"""The scheduler interface of the engine.

A scheduler is consulted by the engine at three points:

* :meth:`Scheduler.on_request` — a transaction has a pending access; may
  it perform now, must it wait, or should somebody be rolled back?
* :meth:`Scheduler.after_performed` — a step was just performed; the
  Section 6 *cycle-detection* strategy reacts here (the step may have
  closed a cycle in the coherent closure, forcing a rollback).
* :meth:`Scheduler.may_commit` — a finished transaction asks to commit.

Schedulers never touch entity values; the engine owns stores, undo and
cascades.  Victim sets returned in :class:`Decision` are transaction
names whose *current attempts* the engine will roll back and restart.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.runtime import Engine, TxnState
    from repro.model.programs import Access
    from repro.model.steps import StepRecord

__all__ = ["Action", "Decision", "Scheduler"]


class Action(Enum):
    PERFORM = "perform"
    WAIT = "wait"
    ABORT = "abort"


@dataclass(frozen=True)
class Decision:
    """A scheduling verdict.  ``victims`` accompanies ``ABORT``.

    ``victim_points`` optionally names, per victim, the first step index
    that must be undone.  Under the engine's ``recovery="segment"`` mode
    the victim is rolled back only to its latest breakpoint at or before
    that step (the paper's intermediate *unit of recovery*); without a
    point — or under the default whole-transaction recovery — the victim
    restarts from scratch.
    """

    action: Action
    victims: tuple[str, ...] = ()
    reason: str = ""
    victim_points: tuple[tuple[str, int], ...] = ()

    @classmethod
    def perform(cls) -> "Decision":
        return cls(Action.PERFORM)

    @classmethod
    def wait(cls, reason: str = "") -> "Decision":
        return cls(Action.WAIT, reason=reason)

    @classmethod
    def abort(cls, victims, reason: str = "", points=None) -> "Decision":
        return cls(
            Action.ABORT,
            tuple(victims),
            reason=reason,
            victim_points=tuple((points or {}).items()),
        )


class Scheduler:
    """Base class: admit everything (no concurrency control at all).

    Running the engine with the base scheduler yields arbitrary
    interleavings — the contrast workload for experiment E5, where the
    audit invariant visibly breaks without control.
    """

    name = "none"

    def __init__(self) -> None:
        self.engine: "Engine | None" = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def attach(self, engine: "Engine") -> None:
        """Called once by the engine before the run starts.

        Wires the engine's flight recorder into the scheduler's closure
        window, if it has one (the window has no engine reference of its
        own, so the tracer and logical clock are injected here)."""
        self.engine = engine
        window = getattr(self, "window", None)
        if window is not None:
            window.tracer = engine.tracer
            window.clock = lambda: engine.tick
            window.profiler = engine.profiler
            window.wal = engine.wal
        self.bind_metrics(engine.registry)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Picklable dynamic state for engine snapshots.  The base
        scheduler is stateless; subclasses with waits-for graphs, locks
        or closure windows override (iteration orders that feed victim
        choice must round-trip exactly)."""
        return {}

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`snapshot_state` dict onto a freshly
        constructed scheduler of the same kind."""

    def bind_metrics(self, registry) -> None:
        """Called from :meth:`attach` so schedulers can pre-bind their
        domain counters (lock traffic, conflicts, parks, ...) against
        the engine's registry.  Default: nothing to bind."""

    def _counter(self, registry, name: str, help: str = ""):
        """A ``scheduler=``-labeled counter child, or ``None`` when the
        registry is disabled — sites guard with ``if c is not None``."""
        if not registry.enabled:
            return None
        return registry.counter(
            name, help=help, labels=("scheduler",)
        ).labels(scheduler=self.name)

    @property
    def tracer(self) -> Tracer:
        """The attached engine's flight recorder (null before attach)."""
        return self.engine.tracer if self.engine is not None else NULL_TRACER

    # ------------------------------------------------------------------
    # decision points
    # ------------------------------------------------------------------

    def on_request(self, txn: "TxnState", access: "Access") -> Decision:
        return Decision.perform()

    def after_performed(
        self, txn: "TxnState", record: "StepRecord"
    ) -> Decision | None:
        """Optionally veto a just-performed step (cycle detection)."""
        return None

    def may_commit(self, txn: "TxnState") -> Decision:
        return Decision.perform()

    # ------------------------------------------------------------------
    # notifications
    # ------------------------------------------------------------------

    def on_commit(self, txn: "TxnState") -> None:
        pass

    def on_abort(self, txn: "TxnState") -> None:
        pass

    def on_rollback(self, txn: "TxnState", keep_steps: int) -> None:
        """Partial-rollback notification (``recovery="segment"``): the
        transaction keeps its first ``keep_steps`` steps.  Default: treat
        a rollback-to-zero like a full abort and ignore the rest."""
        if keep_steps == 0:
            self.on_abort(txn)

    def on_stall(self, active: list["TxnState"]) -> Decision:
        """Called when no transaction has made progress for a while.

        Default: roll back a randomly chosen transaction among the
        youngest-priority tier (the paper's priority/rollback mechanism
        "to insure that no initiated transaction gets blocked
        indefinitely").  Randomising within the tier matters: a
        deterministic pick can shoot the same innocent bystander forever
        while the genuinely deadlocked pair never budges.
        """
        worst = max(t.priority for t in active)
        tier = sorted(
            (t for t in active if t.priority == worst), key=lambda t: t.name
        )
        if self.engine is not None:
            victim = self.engine.rng.choice(tier)
        else:  # pragma: no cover - engine always attaches first
            victim = tier[-1]
        return Decision.abort([victim.name], "stall")
