"""Strict two-phase locking ([EGLT]) — the classical serializability
baseline.

Shared locks for reads, exclusive locks for writes/updates, all held to
commit (strictness also gives recoverability: no dirty reads, so the
engine's cascade machinery stays idle under this scheduler).  Deadlocks
are detected on the waits-for graph; the youngest transaction in the
cycle is rolled back.
"""

from __future__ import annotations

from repro.engine.locks import LockManager, LockMode
from repro.engine.schedulers.base import Decision, Scheduler
from repro.model.steps import StepKind

__all__ = ["TwoPhaseLockingScheduler"]


class TwoPhaseLockingScheduler(Scheduler):
    """``shared_reads`` selects the conflict model the locks realise:

    * ``False`` (default) — every access takes an exclusive lock,
      matching the paper's dependency order in which *all* same-entity
      accesses conflict (reads included);
    * ``True`` — reads take shared locks, sound only under the classical
      read-write conflict model (check results with ``conflicts="rw"``).
    """

    name = "2pl"

    def __init__(self, shared_reads: bool = False) -> None:
        super().__init__()
        self.locks = LockManager()
        self.shared_reads = shared_reads
        self._mx_acquires = None
        self._mx_lock_waits = None
        self._mx_deadlocks = None

    def bind_metrics(self, registry) -> None:
        self._mx_acquires = self._counter(
            registry, "repro_lock_acquires_total", "Locks granted.")
        self._mx_lock_waits = self._counter(
            registry, "repro_lock_waits_total", "Lock-conflict waits.")
        self._mx_deadlocks = self._counter(
            registry, "repro_scheduler_deadlocks_total",
            "Waits-for cycles broken by the scheduler.")

    def on_request(self, txn, access) -> Decision:
        mode = (
            LockMode.SHARED
            if self.shared_reads and access.kind is StepKind.READ
            else LockMode.EXCLUSIVE
        )
        tr = self.tracer
        if self.locks.try_acquire(txn.name, access.entity, mode):
            if self._mx_acquires is not None:
                self._mx_acquires.inc()
            if tr.enabled:
                tr.emit(
                    "lock.acquire",
                    self.engine.tick if self.engine is not None else 0,
                    txn=txn.name,
                    entity=access.entity,
                    mode=mode,
                )
            return Decision.perform()
        cycle = self.locks.deadlock_cycle()
        if cycle:
            assert self.engine is not None
            states = [self.engine.txns[name] for name in cycle]
            victim = max(states, key=lambda t: (t.priority, t.name))
            self.engine.metrics.deadlocks += 1
            if self._mx_deadlocks is not None:
                self._mx_deadlocks.inc()
            if tr.enabled:
                tr.emit(
                    "deadlock",
                    self.engine.tick,
                    cycle=list(cycle),
                    victim=victim.name,
                    cause="lock",
                )
            return Decision.abort([victim.name], "2pl deadlock")
        if self._mx_lock_waits is not None:
            self._mx_lock_waits.inc()
        if tr.enabled:
            tr.emit(
                "lock.wait",
                self.engine.tick if self.engine is not None else 0,
                txn=txn.name,
                entity=access.entity,
                mode=mode,
                holders=sorted(self.locks.holders(access.entity)),
            )
        return Decision.wait(f"lock conflict on {access.entity!r}")

    def may_commit(self, txn) -> Decision:
        return Decision.perform()

    def _release(self, txn) -> None:
        released = self.locks.release_all(txn.name)
        tr = self.tracer
        if tr.enabled and released:
            tr.emit(
                "lock.release",
                self.engine.tick if self.engine is not None else 0,
                txn=txn.name,
                entities=sorted(set(released)),
            )

    def on_commit(self, txn) -> None:
        self._release(txn)

    def on_abort(self, txn) -> None:
        self._release(txn)

    def snapshot_state(self) -> dict:
        return {"locks": self.locks.snapshot_state()}

    def restore_state(self, state: dict) -> None:
        self.locks.restore_state(state["locks"])
