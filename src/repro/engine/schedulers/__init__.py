"""Concurrency controls for the engine.

* :class:`~repro.engine.schedulers.base.Scheduler` — no control at all
  (arbitrary interleavings; the contrast case for experiment E5).
* :class:`~repro.engine.schedulers.serial.SerialScheduler` — one
  transaction at a time (the concurrency floor).
* :class:`~repro.engine.schedulers.two_phase.TwoPhaseLockingScheduler` —
  strict 2PL ([EGLT]).
* :class:`~repro.engine.schedulers.timestamp.TimestampScheduler` —
  timestamp ordering ([L]).
* :class:`~repro.engine.schedulers.mla_detect.MLADetectScheduler` —
  Section 6 cycle detection over the coherent closure (with the flat
  2-nest: classical serialization-graph testing).
* :class:`~repro.engine.schedulers.mla_prevent.MLAPreventScheduler` —
  Section 6 cycle prevention by waiting for breakpoints.
"""

from repro.engine.schedulers.base import Action, Decision, Scheduler
from repro.engine.schedulers.mla_detect import MLADetectScheduler
from repro.engine.schedulers.mla_prevent import MLAPreventScheduler
from repro.engine.schedulers.nested_lock import NestedLockScheduler
from repro.engine.schedulers.serial import SerialScheduler
from repro.engine.schedulers.timestamp import TimestampScheduler
from repro.engine.schedulers.two_phase import TwoPhaseLockingScheduler

__all__ = [
    "Action",
    "Decision",
    "Scheduler",
    "SerialScheduler",
    "TwoPhaseLockingScheduler",
    "TimestampScheduler",
    "MLADetectScheduler",
    "MLAPreventScheduler",
    "NestedLockScheduler",
]
