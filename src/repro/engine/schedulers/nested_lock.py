"""Breakpoint-released locking: multilevel atomicity via nested-style locks.

Section 7 leaves open "whether implementation of multilevel atomicity as
a special case of the nested transaction model provides reasonable
efficiency" — nested-transaction systems enforce atomicity with lock
*retention* rules rather than explicit dependency graphs.  This scheduler
is that idea specialised to multilevel atomicity:

* every access takes the entity's lock, annotated with the step at which
  the holder last touched it;
* a competitor ``t'`` may acquire an entity some ``t`` holds only when
  ``t`` has passed a breakpoint of level ``<= level(t, t')`` *since its
  last access to that entity* (or finished) — the per-entity analogue of
  the Section 6 prevention rule, with no closure computation at all;
* locks die at commit/rollback; waits-for cycles abort the youngest.

The per-entity rule is cheaper but *weaker* than the closure rule: it
ignores transitive constraints through third parties, so it can admit a
schedule whose coherent closure is cyclic.  With ``certify=True``
(default) the scheduler therefore keeps a closure window as a safety net
and rolls back on certification failure — and the rate of those failures
is itself the answer to the paper's open question, measured by
experiment E13.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.nests import KNest
from repro.engine.closure_window import ClosureWindow
from repro.engine.cycles import WaitGraph
from repro.engine.schedulers._certify import certify_commit
from repro.engine.schedulers.base import Decision, Scheduler

__all__ = ["NestedLockScheduler"]


@dataclass
class _Hold:
    """One transaction's claim on an entity."""

    last_access_step: int = 0


@dataclass
class _EntityLock:
    holders: dict[str, _Hold] = field(default_factory=dict)


class NestedLockScheduler(Scheduler):
    name = "mla-nested-lock"

    def __init__(
        self,
        nest: KNest,
        certify: bool = True,
        conflicts: str = "all",
        prune_interval: int = 16,
    ) -> None:
        super().__init__()
        self.nest = nest
        self.certify = certify
        self._locks: dict[str, _EntityLock] = {}
        self._waiting_on: dict[str, set[str]] = {}
        self.certification_failures = 0
        self.window = (
            ClosureWindow(
                nest, prune_interval=prune_interval, conflicts=conflicts
            )
            if certify
            else None
        )
        self._mx_retention_waits = None
        self._mx_certify_failures = None
        self._mx_checks = None

    def bind_metrics(self, registry) -> None:
        self._mx_retention_waits = self._counter(
            registry, "repro_retention_waits_total",
            "Accesses delayed by the per-entity retention rule.")
        self._mx_certify_failures = self._counter(
            registry, "repro_certify_failures_total",
            "Schedules the retention rule admitted but the closure rejects.")
        self._mx_checks = self._counter(
            registry, "repro_closure_checks_total",
            "Coherent-closure queries (per-step and hypothetical).")

    # ------------------------------------------------------------------

    def _passed_breakpoint_since(self, txn, step_index: int, level: int) -> bool:
        """Whether ``txn`` has a declared breakpoint of level ``<= level``
        in some gap at or after ``step_index - 1`` — i.e. whether the
        segment (at that level) containing its ``step_index``-th access
        has closed."""
        if txn.finished:
            return True
        for gap, declared in txn.live.cut_levels.items():
            if gap >= step_index - 1 and declared <= level:
                return True
        return False

    def _blockers(self, txn, entity: str) -> set[str]:
        assert self.engine is not None
        lock = self._locks.setdefault(entity, _EntityLock())
        blockers: set[str] = set()
        for holder, hold in lock.holders.items():
            if holder == txn.name:
                continue
            other = self.engine.txns.get(holder)
            if other is None or other.committed:
                continue
            level = self.nest.level(holder, txn.name)
            if not self._passed_breakpoint_since(
                other, hold.last_access_step + 1, level
            ):
                blockers.add(holder)
        return blockers

    # ------------------------------------------------------------------

    def on_request(self, txn, access) -> Decision:
        assert self.engine is not None
        blockers = self._blockers(txn, access.entity)
        tr = self.tracer
        if blockers:
            self._waiting_on[txn.name] = blockers
            graph = WaitGraph()
            for waiter, blocking in self._waiting_on.items():
                for blocker in blocking:
                    graph.add_edge(waiter, blocker)
            edge_cycle = graph.find_cycle()
            if edge_cycle is None:
                if self._mx_retention_waits is not None:
                    self._mx_retention_waits.inc()
                if tr.enabled:
                    tr.emit(
                        "retention.wait",
                        self.engine.tick,
                        txn=txn.name,
                        entity=access.entity,
                        holders=sorted(blockers),
                    )
                return Decision.wait(
                    f"{access.entity!r} retained by {sorted(blockers)}"
                )
            cycle = [u for u, _ in edge_cycle]
            states = [self.engine.txns[name] for name in cycle]
            victim = max(states, key=lambda t: (t.priority, t.name))
            self.engine.metrics.deadlocks += 1
            if tr.enabled:
                tr.emit(
                    "deadlock",
                    self.engine.tick,
                    cycle=list(cycle),
                    victim=victim.name,
                    cause="retention",
                )
            return Decision.abort([victim.name], "retention deadlock")
        self._waiting_on.pop(txn.name, None)
        return Decision.perform()

    def after_performed(self, txn, record) -> Decision | None:
        assert self.engine is not None
        lock = self._locks.setdefault(record.entity, _EntityLock())
        lock.holders[txn.name] = _Hold(record.step.index)
        if self.window is None:
            return None
        self.engine.metrics.closure_checks += 1
        if self._mx_checks is not None:
            self._mx_checks.inc()
        result = self.window.observe(
            txn.name, record.step, record.entity, record.kind,
            txn.live.cut_levels,
        )
        self.engine.metrics.closure_edges_added += result.edges_added
        self.window.sync_metrics(self.engine.metrics)
        if result.is_partial_order:
            return None
        # Certification failure: the per-entity retention rule admitted a
        # schedule the closure rejects.  Recover like the detector would.
        self.certification_failures += 1
        self.engine.metrics.cycles_detected += 1
        if self._mx_certify_failures is not None:
            self._mx_certify_failures.inc()
        owners = {
            step.transaction
            for step in result.cycle or ()
            if step.transaction in self.engine.txns
            and not self.engine.txns[step.transaction].committed
        }
        victims = owners or {txn.name}
        victim = max(
            (self.engine.txns[name] for name in victims),
            key=lambda t: (t.priority, t.name),
        )
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                "certify.fail",
                self.engine.tick,
                witness=[str(step) for step in result.cycle or ()],
                victim=victim.name,
                when="step",
            )
        return Decision.abort([victim.name], "certification failure")

    def may_commit(self, txn) -> Decision:
        return certify_commit(self, txn)

    def _release(self, name: str) -> None:
        for lock in self._locks.values():
            lock.holders.pop(name, None)
        self._waiting_on.pop(name, None)

    def on_commit(self, txn) -> None:
        self._release(txn.name)
        if self.window is not None:
            self.window.mark_committed(txn.name)

    def on_abort(self, txn) -> None:
        self._release(txn.name)
        if self.window is not None:
            self.window.drop(txn.name)

    def snapshot_state(self) -> dict:
        return {
            "locks": [
                (
                    entity,
                    [
                        (name, hold.last_access_step)
                        for name, hold in lock.holders.items()
                    ],
                )
                for entity, lock in self._locks.items()
            ],
            "waiting_on": [
                (waiter, sorted(blockers))
                for waiter, blockers in self._waiting_on.items()
            ],
            "certification_failures": self.certification_failures,
            "window": (
                self.window.snapshot_state()
                if self.window is not None
                else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        self._locks = {
            entity: _EntityLock(
                {name: _Hold(step) for name, step in holders}
            )
            for entity, holders in state["locks"]
        }
        self._waiting_on = {
            waiter: set(blockers)
            for waiter, blockers in state["waiting_on"]
        }
        self.certification_failures = state["certification_failures"]
        if self.window is not None and state["window"] is not None:
            self.window.restore_state(state["window"])
