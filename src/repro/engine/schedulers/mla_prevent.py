"""Section 6, strategy 2: cycle prevention by waiting for breakpoints.

    "Let b be a step of any transaction t'.  b first gets 'scheduled',
    thereby locking its entity and delaying t'.  b does not actually get
    'performed' until the following is insured. [...] If a is the last
    step of some transaction t which precedes b in the coherent closure
    of <=_e, then a level(t, t') breakpoint immediately follows a in t's
    execution subsequence. [...] If the property above is guaranteed, for
    each b, then the coherent closure of <=_e is consistent with the
    total ordering of steps in e, so it must be a partial order."

Implementation: a request for step ``b`` of ``t'`` first takes the
entity's lock (the paper's "scheduled" state), then asks the closure
window for ``b``'s would-be closure predecessors; if some active
transaction's *last* performed step is among them and that transaction is
not currently at a breakpoint of level ``level(t, t')`` (nor finished),
``b`` waits.  The engine's stall handler plus the waits-for-breakpoint
graph resolve circular waits by rolling back the youngest participant —
the paper's assumed "priority - rollback mechanism for preventing
blocking".

Because performed steps then never precede earlier steps in the closure,
the committed execution is always correctable — experiment E7/E4's
property tests verify exactly that.
"""

from __future__ import annotations

from repro.core.nests import KNest
from repro.engine.closure_window import ClosureWindow
from repro.engine.cycles import WaitGraph
from repro.engine.locks import LockManager, LockMode
from repro.engine.schedulers._certify import certify_commit
from repro.engine.schedulers.base import Decision, Scheduler
from repro.model.steps import StepId, StepKind

__all__ = ["MLAPreventScheduler"]


class MLAPreventScheduler(Scheduler):
    name = "mla-prevent"

    def __init__(
        self,
        nest: KNest,
        mode: str = "incremental",
        prune_interval: int = 16,
        use_locks: bool = False,
        conflicts: str = "all",
    ) -> None:
        # ``use_locks`` reproduces the paper's literal "scheduled, thereby
        # locking its entity" device.  In this engine steps are performed
        # atomically within a tick, so the scheduled-lock protects nothing
        # and only manufactures extra deadlocks; it is off by default and
        # kept as an option for fidelity experiments.
        super().__init__()
        self.nest = nest
        self.conflicts = conflicts
        self.window = ClosureWindow(
            nest, mode=mode, prune_interval=prune_interval, conflicts=conflicts
        )
        self.use_locks = use_locks
        self.locks = LockManager() if use_locks else None
        # waiter -> blocking transaction names (for circular-wait checks)
        self._waiting_on: dict[str, set[str]] = {}
        self._mx_checks = None
        self._mx_bp_waits = None
        self._mx_cycles = None

    def bind_metrics(self, registry) -> None:
        self._mx_checks = self._counter(
            registry, "repro_closure_checks_total",
            "Coherent-closure queries (per-step and hypothetical).")
        self._mx_bp_waits = self._counter(
            registry, "repro_breakpoint_waits_total",
            "Steps delayed until blockers reach a suitable breakpoint.")
        self._mx_cycles = self._counter(
            registry, "repro_cycles_detected_total",
            "Closure cycles detected (rollback triggered).")

    # ------------------------------------------------------------------

    def _breakpoint_blockers(self, txn, access) -> set[str]:
        """Active transactions whose last step would precede the requested
        step in the closure and that are not at a suitable breakpoint."""
        assert self.engine is not None
        step = StepId(txn.name, txn.steps_taken)
        acyclic, predecessors, cycle_owners = self.window.hypothetical(
            txn.name, step, access.entity, access.kind
        )
        self.engine.metrics.closure_checks += 1
        if self._mx_checks is not None:
            self._mx_checks.inc()
        if not acyclic:
            # Performing now would close a cycle outright; wait for the
            # transactions on that cycle to advance (their segments close
            # at breakpoints, dissolving the retroactive edges).
            return {
                owner
                for owner in cycle_owners
                if owner != txn.name
                and owner in self.engine.txns
                and not self.engine.txns[owner].committed
            } or {
                other.name
                for other in self.engine.active_states()
                if other.name != txn.name
            }
        blockers: set[str] = set()
        for other in self.engine.active_states():
            if other.name == txn.name or other.committed:
                continue
            last = self.window.last_step_of(other.name)
            if last is None or last not in predecessors:
                continue
            level = self.nest.level(other.name, txn.name)
            if not other.at_breakpoint(level):
                blockers.add(other.name)
        return blockers

    # ------------------------------------------------------------------

    def on_request(self, txn, access) -> Decision:
        assert self.engine is not None
        if self.locks is not None:
            mode = (
                LockMode.SHARED
                if access.kind is StepKind.READ
                else LockMode.EXCLUSIVE
            )
            if not self.locks.try_acquire(txn.name, access.entity, mode):
                cycle = self.locks.deadlock_cycle()
                tr = self.tracer
                if cycle:
                    states = [self.engine.txns[n] for n in cycle]
                    victim = max(states, key=lambda t: (t.priority, t.name))
                    self.engine.metrics.deadlocks += 1
                    if tr.enabled:
                        tr.emit(
                            "deadlock",
                            self.engine.tick,
                            cycle=list(cycle),
                            victim=victim.name,
                            cause="lock",
                        )
                    return Decision.abort([victim.name], "lock deadlock")
                if tr.enabled:
                    tr.emit(
                        "lock.wait",
                        self.engine.tick,
                        txn=txn.name,
                        entity=access.entity,
                        mode=mode,
                    )
                return Decision.wait(f"scheduled: lock on {access.entity!r}")
        blockers = self._breakpoint_blockers(txn, access)
        tr = self.tracer
        if blockers:
            self._waiting_on[txn.name] = blockers
            cycle = self._wait_cycle()
            if cycle:
                states = [self.engine.txns[n] for n in cycle]
                victim = max(states, key=lambda t: (t.priority, t.name))
                self.engine.metrics.deadlocks += 1
                if tr.enabled:
                    tr.emit(
                        "deadlock",
                        self.engine.tick,
                        cycle=list(cycle),
                        victim=victim.name,
                        cause="breakpoint-wait",
                    )
                return Decision.abort([victim.name], "breakpoint-wait cycle")
            if self._mx_bp_waits is not None:
                self._mx_bp_waits.inc()
            if tr.enabled:
                tr.emit(
                    "breakpoint.wait",
                    self.engine.tick,
                    txn=txn.name,
                    blockers=sorted(blockers),
                )
            return Decision.wait(
                f"waiting for breakpoints of {sorted(blockers)}"
            )
        self._waiting_on.pop(txn.name, None)
        return Decision.perform()

    def _wait_cycle(self) -> list[str] | None:
        graph = WaitGraph()
        for waiter, blockers in self._waiting_on.items():
            # Sorted: edge insertion order decides which cycle
            # ``find_cycle`` surfaces (hence the victim), and raw set
            # order varies with the process hash seed.
            for blocker in sorted(blockers):
                graph.add_edge(waiter, blocker)
        if self.locks is not None:
            for u, v in self.locks.waits_for_edges():
                graph.add_edge(u, v)
        cycle = graph.find_cycle()
        if cycle is None:
            return None
        return [u for u, _ in cycle]

    def after_performed(self, txn, record) -> Decision | None:
        assert self.engine is not None
        if self.locks is not None:
            # The paper's lock covers only the scheduled-but-not-performed
            # window of a single step; holding it to commit would collapse
            # prevention into two-phase locking.
            self.locks.release_all(txn.name)
        result = self.window.observe(
            txn.name, record.step, record.entity, record.kind,
            txn.live.cut_levels,
        )
        self.engine.metrics.closure_edges_added += result.edges_added
        self.window.sync_metrics(self.engine.metrics)
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                "closure.check",
                self.engine.tick,
                txn=txn.name,
                step=record.step.index,
                acyclic=result.is_partial_order,
                edges_added=result.edges_added,
            )
        if not result.is_partial_order:
            # Prevention should make this unreachable; treat it as a
            # detected cycle and recover rather than corrupt the run.
            self.engine.metrics.cycles_detected += 1
            if self._mx_cycles is not None:
                self._mx_cycles.inc()
            if tr.enabled:
                tr.emit(
                    "cycle.detect",
                    self.engine.tick,
                    witness=[str(step) for step in result.cycle or ()],
                    victim=txn.name,
                    txns=sorted(
                        step.transaction for step in result.cycle or ()
                    ),
                )
            return Decision.abort([txn.name], "prevention miss")
        return None

    def may_commit(self, txn) -> Decision:
        return certify_commit(self, txn)

    def on_commit(self, txn) -> None:
        if self.locks is not None:
            self.locks.release_all(txn.name)
        self._waiting_on.pop(txn.name, None)
        self.window.mark_committed(txn.name)

    def on_rollback(self, txn, keep_steps: int) -> None:
        if keep_steps == 0:
            self.on_abort(txn)
        else:
            self.window.truncate(txn.name, keep_steps)

    def on_abort(self, txn) -> None:
        if self.locks is not None:
            self.locks.release_all(txn.name)
        self._waiting_on.pop(txn.name, None)
        self.window.drop(txn.name)

    def snapshot_state(self) -> dict:
        # ``_waiting_on`` insertion order feeds ``_wait_cycle``'s edge
        # order (victim identity); keep it as an ordered list.
        return {
            "window": self.window.snapshot_state(),
            "waiting_on": [
                (waiter, sorted(blockers))
                for waiter, blockers in self._waiting_on.items()
            ],
            "locks": (
                self.locks.snapshot_state() if self.locks is not None else None
            ),
        }

    def restore_state(self, state: dict) -> None:
        self.window.restore_state(state["window"])
        self._waiting_on = {
            waiter: set(blockers)
            for waiter, blockers in state["waiting_on"]
        }
        if self.locks is not None and state["locks"] is not None:
            self.locks.restore_state(state["locks"])
