"""Commit-time closure certification, shared by the MLA schedulers.

Per-step cycle detection has a subtle hole: ``find_cycle`` surfaces *one*
cycle, and rolling back its victim does not prove the rest of the closure
acyclic.  A transaction whose final step participated in a second,
undetected cycle could otherwise commit a non-correctable history into
the window — permanently, since committed steps never leave.

The fix is an induction invariant: **no transaction commits while the
window's closure is cyclic.**  ``certify_commit`` re-checks the closure
when a finished transaction asks to commit and, on a cycle, rolls back an
active participant (or, when a cycle consists purely of committed steps —
possible only through a still-active justifier — the youngest active
transaction, whose rollback removes the justification).
"""

from __future__ import annotations

from repro.engine.schedulers.base import Decision

__all__ = ["certify_commit"]


def certify_commit(scheduler, txn) -> Decision:
    """Allow the commit only if the scheduler's window is acyclic."""
    window = getattr(scheduler, "window", None)
    if window is None:
        return Decision.perform()
    result = window._closure()
    if result is None or result.is_partial_order:
        return Decision.perform()
    engine = scheduler.engine
    assert engine is not None
    engine.metrics.cycles_detected += 1
    mx_cycles = getattr(scheduler, "_mx_cycles", None)
    if mx_cycles is not None:
        mx_cycles.inc()
    owners = {
        step.transaction
        for step in result.cycle or ()
        if step.transaction in engine.txns
        and not engine.txns[step.transaction].committed
    }
    if not owners:
        # The cycle lies among committed steps, justified through some
        # still-active transaction's reachability; remove a justifier.
        owners = {
            state.name for state in engine.active_states()
        }
    victim = max(
        (engine.txns[name] for name in owners),
        key=lambda t: (t.priority, t.name),
    )
    tracer = engine.tracer
    if tracer.enabled:
        tracer.emit(
            "cycle.detect",
            engine.tick,
            witness=[str(step) for step in result.cycle or ()],
            victim=victim.name,
            txns=sorted(
                step.transaction for step in result.cycle or ()
            ),
            when="commit-certify",
        )
    return Decision.abort([victim.name], "commit-time certification")
