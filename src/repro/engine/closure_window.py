"""On-line maintenance of the coherent closure over a performed prefix.

Section 6's two strategies both revolve around the coherent closure of
the dependency order of the execution *performed so far*:

* cycle **detection** recomputes the closure after each performed step and
  rolls back when a cycle appears;
* cycle **prevention** asks, before performing a step ``b``, which
  transactions' last steps would precede ``b`` in the closure, and delays
  ``b`` until each of them sits at a breakpoint of the appropriate level.

The window keeps, per transaction, the steps performed by its *current
attempt* and the breakpoint levels declared so far; segments that have
not yet reached their next breakpoint are *open* and simply end at the
prefix boundary (their eventual last step is unknown — exactly why a
later step of the same segment can retroactively precede an already
performed foreign step, which is where cycles come from).

Closure computation reuses :func:`repro.core.coherence.coherent_closure`
on the prefix specification.  Two maintenance modes (ablated by
experiment E10):

* ``"full"`` — recompute from the base dependency edges every time;
* ``"incremental"`` — seed each recomputation with the edge set derived
  last time.  Sound because closures only grow as the prefix grows.

Committed transactions whose lifetime no longer overlaps any active
attempt are pruned; reachability through pruned steps is preserved by
shortcut edges *derived from the committed-only closure* — orderings
justified through still-active attempts are deliberately excluded, since
an attempt that later aborts would leave a stale (and potentially
permanently cyclic) constraint behind.  After an abort the window is
rebuilt from base edges (derived rule edges may have been justified
through the dropped steps); committed-only shortcuts are durable and are
kept."""

from __future__ import annotations

from collections.abc import Mapping

import networkx as nx

from repro.core.coherence import ClosureResult, coherent_closure
from repro.core.interleaving import InterleavingSpec
from repro.core.nests import KNest
from repro.core.segmentation import BreakpointDescription
from repro.errors import EngineError
from repro.model.steps import StepId, StepKind

__all__ = ["ClosureWindow"]


class ClosureWindow:
    """Coherent closure over the live performed prefix."""

    def __init__(
        self,
        nest: KNest,
        mode: str = "incremental",
        prune_interval: int = 16,
        conflicts: str = "all",
    ) -> None:
        if mode not in ("incremental", "full"):
            raise EngineError(f"unknown closure mode {mode!r}")
        if conflicts not in ("all", "rw"):
            raise EngineError(f"unknown conflict model {conflicts!r}")
        self.nest = nest
        self.k = nest.k
        self.mode = mode
        self.conflicts = conflicts
        self.prune_interval = prune_interval
        self._steps: dict[str, list[StepId]] = {}
        self._cuts: dict[str, dict[int, int]] = {}
        self._access_of: dict[StepId, tuple[str, StepKind]] = {}
        self._order: list[StepId] = []
        self._committed: set[str] = set()
        self._shortcut_edges: set[tuple[StepId, StepId]] = set()
        self._carry_edges: set[tuple[StepId, StepId]] = set()
        self._commits_since_prune = 0
        self.closure_calls = 0
        self.edges_last = 0

    # ------------------------------------------------------------------
    # window contents
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._order)

    def steps_of(self, name: str) -> list[StepId]:
        return list(self._steps.get(name, []))

    def last_step_of(self, name: str) -> StepId | None:
        steps = self._steps.get(name)
        return steps[-1] if steps else None

    def _spec(
        self,
        extra: tuple[str, StepId] | None = None,
    ) -> InterleavingSpec | None:
        steps = {n: list(s) for n, s in self._steps.items() if s}
        cuts = {n: dict(self._cuts.get(n, {})) for n in steps}
        if extra is not None:
            name, step = extra
            steps.setdefault(name, []).append(step)
            cuts.setdefault(name, dict(self._cuts.get(name, {})))
        if not steps:
            return None
        descriptions = {
            n: BreakpointDescription.from_cut_levels(
                s,
                self.k,
                {
                    g: lv
                    for g, lv in cuts[n].items()
                    # Levels beyond the nest depth are vacuous: no pair of
                    # distinct transactions is related that closely.
                    if g < len(s) - 1 and lv <= self.k
                },
            )
            for n, s in steps.items()
        }
        return InterleavingSpec(self.nest.restrict(steps), descriptions)

    def _entity_edges(self, order) -> list[tuple[StepId, StepId]]:
        edges: list[tuple[StepId, StepId]] = []
        last: dict[str, StepId] = {}
        last_write: dict[str, StepId] = {}
        reads_since: dict[str, list[StepId]] = {}
        for step in order:
            entity, kind = self._access_of[step]
            if self.conflicts == "all":
                if entity in last:
                    edges.append((last[entity], step))
            elif kind is StepKind.READ:
                if entity in last_write:
                    edges.append((last_write[entity], step))
                reads_since.setdefault(entity, []).append(step)
            else:
                if entity in last_write:
                    edges.append((last_write[entity], step))
                edges.extend(
                    (reader, step)
                    for reader in reads_since.get(entity, [])
                    if reader != step
                )
                last_write[entity] = step
                reads_since[entity] = []
            last[entity] = step
        return edges

    # ------------------------------------------------------------------
    # closure
    # ------------------------------------------------------------------

    def _closure(
        self, extra: tuple[str, StepId, str, StepKind] | None = None
    ) -> ClosureResult | None:
        order = list(self._order)
        extra_key = None
        if extra is not None:
            name, step, entity, kind = extra
            self._access_of[step] = (entity, kind)
            order.append(step)
            extra_key = (name, step)
        spec = self._spec(extra_key)
        if spec is None:
            if extra is not None:
                del self._access_of[extra[1]]
            return None
        seed = set(self._entity_edges(order)) | self._shortcut_edges
        if self.mode == "incremental":
            seed |= self._carry_edges
        result = coherent_closure(spec, seed)
        self.closure_calls += 1
        self.edges_last = result.graph.number_of_edges()
        if extra is not None:
            del self._access_of[extra[1]]
        elif self.mode == "incremental" and result.is_partial_order:
            self._carry_edges = set(result.graph.edges)
        return result

    def observe(self, name: str, step: StepId, entity: str,
                kind: StepKind, cut_levels: Mapping[int, int]) -> ClosureResult:
        """Record a performed step and return the closure state."""
        self._steps.setdefault(name, []).append(step)
        self._cuts[name] = dict(cut_levels)
        self._access_of[step] = (entity, kind)
        self._order.append(step)
        result = self._closure()
        assert result is not None
        return result

    def hypothetical(
        self, name: str, step: StepId, entity: str, kind: StepKind
    ) -> tuple[bool, set[StepId], set[str]]:
        """What performing ``step`` would do.

        Returns ``(acyclic, predecessors, cycle_transactions)``: the
        closure-ancestors of ``step`` when acyclic, or the transactions
        on the witnessed cycle when performing the step would close one.
        """
        result = self._closure(extra=(name, step, entity, kind))
        if result is None:
            return True, set(), set()
        if not result.is_partial_order:
            owners = {s.transaction for s in result.cycle or ()}
            return False, set(), owners
        return True, set(nx.ancestors(result.graph, step)), set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def truncate(self, name: str, keep: int) -> None:
        """Partial rollback: keep only the first ``keep`` steps of the
        transaction's current attempt (``recovery="segment"``)."""
        steps = self._steps.get(name, [])
        if keep <= 0:
            self.drop(name)
            return
        if keep >= len(steps):
            return
        gone = set(steps[keep:])
        self._steps[name] = steps[:keep]
        self._cuts[name] = {
            g: lv
            for g, lv in self._cuts.get(name, {}).items()
            if g < keep - 1
        }
        self._order = [s for s in self._order if s not in gone]
        for step in gone:
            self._access_of.pop(step, None)
        self._carry_edges = set()
        self._shortcut_edges = {
            (u, v)
            for u, v in self._shortcut_edges
            if u not in gone and v not in gone
        }

    def drop(self, name: str) -> None:
        """Remove an aborted attempt's steps and rebuild carried edges."""
        gone = set(self._steps.pop(name, []))
        self._cuts.pop(name, None)
        self._order = [s for s in self._order if s not in gone]
        for step in gone:
            self._access_of.pop(step, None)
        # Derived edges may have been justified through the dropped steps;
        # start the carry from scratch (shortcuts are kept, see module doc).
        self._carry_edges = set()
        self._shortcut_edges = {
            (u, v)
            for u, v in self._shortcut_edges
            if u not in gone and v not in gone
        }

    def mark_committed(self, name: str) -> None:
        self._committed.add(name)
        self._commits_since_prune += 1
        if self._commits_since_prune >= self.prune_interval:
            self._commits_since_prune = 0
            self._prune()

    def _prune(self) -> None:
        """Drop committed transactions that ended before every live
        attempt's first step, preserving reachability via shortcuts."""
        live_first: list[int] = []
        position = {s: i for i, s in enumerate(self._order)}
        for name, steps in self._steps.items():
            if name not in self._committed and steps:
                live_first.append(position[steps[0]])
        watermark = min(live_first) if live_first else len(self._order)
        prunable = [
            name
            for name in self._committed
            if self._steps.get(name)
            and all(position[s] < watermark for s in self._steps[name])
        ]
        if not prunable:
            return
        # Derive shortcuts from the closure over *committed* history only.
        # Edges justified through still-active attempts must not survive a
        # prune: if such an attempt later aborts, its orderings were never
        # real, and a stale shortcut could wedge a permanent cycle among
        # committed steps into the window.  Committed orderings are
        # durable, so this restriction is sound by induction.
        committed_present = sorted(
            n for n in self._committed if self._steps.get(n)
        )
        committed_steps = {
            s for n in committed_present for s in self._steps[n]
        }
        graph: nx.DiGraph = nx.DiGraph()
        if committed_present:
            spec = InterleavingSpec(
                self.nest.restrict(committed_present),
                {
                    n: BreakpointDescription.from_cut_levels(
                        self._steps[n],
                        self.k,
                        {
                            g: lv
                            for g, lv in self._cuts.get(n, {}).items()
                            if g < len(self._steps[n]) - 1 and lv <= self.k
                        },
                    )
                    for n in committed_present
                },
            )
            base = set(
                self._entity_edges(
                    [s for s in self._order if s in committed_steps]
                )
            ) | {
                (u, v)
                for u, v in self._shortcut_edges
                if u in committed_steps and v in committed_steps
            }
            graph = coherent_closure(spec, base).graph.copy()
        for name in prunable:
            for step in self._steps[name]:
                preds = list(graph.predecessors(step))
                succs = list(graph.successors(step))
                graph.remove_node(step)
                graph.add_edges_from(
                    (p, s) for p in preds for s in succs if p != s
                )
        for name in prunable:
            gone = set(self._steps.pop(name))
            self._cuts.pop(name, None)
            self._committed.discard(name)
            self._order = [s for s in self._order if s not in gone]
            for step in gone:
                self._access_of.pop(step, None)
        remaining = set(self._order)
        self._shortcut_edges = {
            (u, v)
            for u, v in graph.edges
            if u in remaining and v in remaining
        }
        self._carry_edges = set(self._shortcut_edges)
