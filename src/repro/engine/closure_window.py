"""On-line maintenance of the coherent closure over a performed prefix.

Section 6's two strategies both revolve around the coherent closure of
the dependency order of the execution *performed so far*:

* cycle **detection** recomputes the closure after each performed step and
  rolls back when a cycle appears;
* cycle **prevention** asks, before performing a step ``b``, which
  transactions' last steps would precede ``b`` in the closure, and delays
  ``b`` until each of them sits at a breakpoint of the appropriate level.

The window keeps, per transaction, the steps performed by its *current
attempt* and the breakpoint levels declared so far; segments that have
not yet reached their next breakpoint are *open* and simply end at the
prefix boundary (their eventual last step is unknown — exactly why a
later step of the same segment can retroactively precede an already
performed foreign step, which is where cycles come from).

Two maintenance modes (ablated by experiment E10):

* ``"full"`` — recompute the closure from the base dependency edges on
  every call, via batch :func:`repro.core.coherence.coherent_closure`;
* ``"incremental"`` — keep one live
  :class:`~repro.core.coherence.ClosureEngine` across calls.  Each
  observed step costs one ``add_step`` plus the entity edges it
  introduces, each propagated in O(affected) by the bitset reachability
  index; nothing is recomputed.  Sound because the prefix only grows at
  segment tails, so every previously derived closure edge remains a
  consequence of the larger prefix.  The engine is torn down (and lazily
  rebuilt from the surviving steps) whenever monotonicity breaks: on
  ``drop`` (abort), ``truncate`` (partial rollback), ``_prune``, on a
  cyclic verdict, and when a transaction rewrites an interior breakpoint
  declaration.  Hypothetical queries run on a clone of the engine —
  cheap, since bitsets are immutable ints — and never disturb it.

Committed transactions whose lifetime no longer overlaps any active
attempt are pruned; reachability through pruned steps is preserved by
shortcut edges *derived from the committed-only closure* — orderings
justified through still-active attempts are deliberately excluded, since
an attempt that later aborts would leave a stale (and potentially
permanently cyclic) constraint behind.  After an abort the window is
rebuilt from base edges (derived rule edges may have been justified
through the dropped steps); committed-only shortcuts are durable and are
kept."""

from __future__ import annotations

import pickle
from collections.abc import Mapping
from time import perf_counter

import networkx as nx

from repro.core.coherence import ClosureEngine, ClosureResult, coherent_closure
from repro.core.interleaving import InterleavingSpec
from repro.core.nests import KNest
from repro.core.segmentation import BreakpointDescription
from repro.errors import EngineError
from repro.model.steps import StepId, StepKind
from repro.obs.profile import NULL_PROFILER
from repro.obs.tracer import NULL_TRACER

__all__ = ["ClosureWindow"]


class _EntityFold:
    """Streaming derivation of entity dependency edges.

    Feeding the performed order step by step yields exactly the edges
    :class:`ClosureWindow` seeds the closure with: under ``"all"`` each
    access depends on the entity's previous access; under ``"rw"`` reads
    depend on the last write and writes on the last write plus the reads
    since it.
    """

    __slots__ = ("conflicts", "_last", "_last_write", "_reads_since")

    def __init__(self, conflicts: str) -> None:
        self.conflicts = conflicts
        self._last: dict[str, StepId] = {}
        self._last_write: dict[str, StepId] = {}
        self._reads_since: dict[str, list[StepId]] = {}

    def feed(
        self, step: StepId, entity: str, kind: StepKind
    ) -> list[tuple[StepId, StepId]]:
        edges: list[tuple[StepId, StepId]] = []
        if self.conflicts == "all":
            prev = self._last.get(entity)
            if prev is not None:
                edges.append((prev, step))
        elif kind is StepKind.READ:
            write = self._last_write.get(entity)
            if write is not None:
                edges.append((write, step))
            self._reads_since.setdefault(entity, []).append(step)
        else:
            write = self._last_write.get(entity)
            if write is not None:
                edges.append((write, step))
            edges.extend(
                (reader, step)
                for reader in self._reads_since.get(entity, [])
                if reader != step
            )
            self._last_write[entity] = step
            self._reads_since[entity] = []
        self._last[entity] = step
        return edges

    def copy(self) -> "_EntityFold":
        other = _EntityFold.__new__(_EntityFold)
        other.conflicts = self.conflicts
        other._last = dict(self._last)
        other._last_write = dict(self._last_write)
        other._reads_since = {
            e: list(r) for e, r in self._reads_since.items()
        }
        return other


class _LiveState:
    """The incremental mode's persistent state: a saturated closure
    engine plus the entity-edge fold matching the order it has seen."""

    __slots__ = ("engine", "fold")

    def __init__(self, engine: ClosureEngine, fold: _EntityFold) -> None:
        self.engine = engine
        self.fold = fold

    def clone(self) -> "_LiveState":
        return _LiveState(self.engine.clone(), self.fold.copy())


class ClosureWindow:
    """Coherent closure over the live performed prefix."""

    def __init__(
        self,
        nest: KNest,
        mode: str = "incremental",
        prune_interval: int = 16,
        conflicts: str = "all",
    ) -> None:
        if mode not in ("incremental", "full"):
            raise EngineError(f"unknown closure mode {mode!r}")
        if conflicts not in ("all", "rw"):
            raise EngineError(f"unknown conflict model {conflicts!r}")
        self.nest = nest
        self.k = nest.k
        self.mode = mode
        self.conflicts = conflicts
        self.prune_interval = prune_interval
        self._steps: dict[str, list[StepId]] = {}
        self._cuts: dict[str, dict[int, int]] = {}
        self._access_of: dict[StepId, tuple[str, StepKind]] = {}
        self._order: list[StepId] = []
        self._committed: set[str] = set()
        self._shortcut_edges: set[tuple[StepId, StepId]] = set()
        self._commits_since_prune = 0
        self._live: _LiveState | None = None
        self._last_result: ClosureResult | None = None
        # Cyclic-verdict cache (incremental mode): the window only ever
        # *grows* between structural edits, and growth cannot un-close a
        # cycle, so once a verdict is cyclic every later observe returns
        # the same result until a rollback/prune/cut-rewrite removes
        # steps.  Cleared by ``_invalidate`` and on interior cut
        # rewrites.
        self._cycle_result: ClosureResult | None = None
        self.closure_backend = "python"
        self.closure_calls = 0
        self.edges_last = 0
        self.closure_seconds = 0.0
        self.closure_edges_propagated = 0
        self.closure_word_ops = 0
        # Flight recorder and phase profiler, wired by Scheduler.attach
        # (the window itself has no engine reference); ``clock`` supplies
        # the event time.  The window donates its already-metered closure
        # intervals to the profiler via ``add`` rather than opening spans.
        self.tracer = NULL_TRACER
        self.clock = lambda: 0
        self.profiler = NULL_PROFILER
        # Durability seam, wired by Scheduler.attach alongside the
        # tracer; prunes are logged because they restructure the window.
        from repro.durability.wal import NULL_WAL

        self.wal = NULL_WAL

    # ------------------------------------------------------------------
    # window contents
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._order)

    def steps_of(self, name: str) -> list[StepId]:
        return list(self._steps.get(name, []))

    def last_step_of(self, name: str) -> StepId | None:
        steps = self._steps.get(name)
        return steps[-1] if steps else None

    def _spec(
        self,
        extra: tuple[str, StepId] | None = None,
    ) -> InterleavingSpec | None:
        steps = {n: list(s) for n, s in self._steps.items() if s}
        cuts = {n: dict(self._cuts.get(n, {})) for n in steps}
        if extra is not None:
            name, step = extra
            steps.setdefault(name, []).append(step)
            cuts.setdefault(name, dict(self._cuts.get(name, {})))
        if not steps:
            return None
        descriptions = {
            n: BreakpointDescription.from_cut_levels(
                s,
                self.k,
                {
                    g: lv
                    for g, lv in cuts[n].items()
                    # Levels beyond the nest depth are vacuous: no pair of
                    # distinct transactions is related that closely.
                    if g < len(s) - 1 and lv <= self.k
                },
            )
            for n, s in steps.items()
        }
        return InterleavingSpec(self.nest.restrict(steps), descriptions)

    def _entity_edges(self, order) -> list[tuple[StepId, StepId]]:
        fold = _EntityFold(self.conflicts)
        edges: list[tuple[StepId, StepId]] = []
        for step in order:
            entity, kind = self._access_of[step]
            edges.extend(fold.feed(step, entity, kind))
        return edges

    def _cut_before(self, name: str, pos: int) -> int | None:
        """Effective breakpoint level of the gap before position ``pos``
        of ``name``'s attempt (``None`` when uncut or out of depth)."""
        if pos <= 0:
            return None
        lv = self._cuts.get(name, {}).get(pos - 1)
        if lv is None or lv > self.k:
            return None
        return lv

    def _cuts_changed(
        self, name: str, new_cuts: Mapping[int, int]
    ) -> bool:
        """Whether ``new_cuts`` rewrites an *interior* gap declaration.

        The newest gap (before the incoming step) may be declared freely
        — it has never been consumed; any other difference breaks the
        monotone-growth assumption of the live engine."""
        old = self._cuts.get(name, {})
        newest = len(self._steps.get(name, [])) - 1
        k = self.k
        for gap in set(old) | set(new_cuts):
            if gap >= newest:
                continue
            ov = old.get(gap)
            nv = new_cuts.get(gap)
            if (ov if ov is not None and ov <= k else None) != (
                nv if nv is not None and nv <= k else None
            ):
                return True
        return False

    # ------------------------------------------------------------------
    # closure
    # ------------------------------------------------------------------

    def _rebuild_live(self) -> _LiveState:
        """Batch-load the current window contents into a fresh engine.

        Transactions are loaded whole (chain edges and segments built in
        one pass), entity and shortcut edges are inserted silently, and a
        single :meth:`~repro.core.coherence.ClosureEngine.bootstrap`
        saturates everything — much cheaper than replaying the performed
        order step by step with online propagation.  The engine stays
        usable for subsequent online updates afterwards."""
        engine = ClosureEngine(self.nest)
        for name, steps in self._steps.items():
            if steps:
                engine.load_transaction(
                    name,
                    steps,
                    [
                        self._cut_before(name, p)
                        for p in range(1, len(steps))
                    ],
                )
        fold = _EntityFold(self.conflicts)
        for step in self._order:
            entity, kind = self._access_of[step]
            for u, v in fold.feed(step, entity, kind):
                engine.add_edge_silent(u, v)
        for u, v in self._shortcut_edges:
            engine.add_edge_silent(u, v)
        engine.bootstrap()
        return _LiveState(engine, fold)

    def _result_of(
        self, engine: ClosureEngine, edges_added_before: int = 0
    ) -> ClosureResult:
        """Wrap the engine state; ``edges_added`` is reported per call
        (delta against the persistent engine's running total), so the
        schedulers' metric accumulation stays correct."""
        return ClosureResult(
            engine.cycle is None,
            cycle=engine.cycle,
            iterations=engine.iterations,
            edges_added=engine.edges_added - edges_added_before,
            index=engine.index,
            backend=engine.backend_used,
        )

    def _recompute(self) -> ClosureResult:
        """Rebuild the live engine from scratch and cache its verdict."""
        t0 = perf_counter()
        live = self._rebuild_live()
        engine = live.engine
        index = engine.index
        self.closure_calls += 1
        elapsed = perf_counter() - t0
        self.closure_seconds += elapsed
        self.profiler.add("closure", elapsed)
        self.closure_edges_propagated += index.edges_propagated
        self.closure_word_ops += index.word_ops
        self.edges_last = index.edges
        self.closure_backend = engine.backend_used
        result = self._result_of(engine)
        self._live = None if engine.cyclic else live
        self._last_result = result
        if engine.cyclic:
            self._cycle_result = result
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                "closure.rebuild",
                self.clock(),
                size=self.size,
                edges=index.edges,
                acyclic=result.is_partial_order,
            )
        return result

    def _closure(
        self, extra: tuple[str, StepId, str, StepKind] | None = None
    ) -> ClosureResult | None:
        if self.mode == "incremental":
            return self._closure_incremental(extra)
        t0 = perf_counter()
        order = list(self._order)
        extra_key = None
        if extra is not None:
            name, step, entity, kind = extra
            self._access_of[step] = (entity, kind)
            order.append(step)
            extra_key = (name, step)
        spec = self._spec(extra_key)
        if spec is None:
            if extra is not None:
                del self._access_of[extra[1]]
            return None
        seed = set(self._entity_edges(order)) | self._shortcut_edges
        result = coherent_closure(spec, seed)
        index = result.index
        assert index is not None
        self.closure_backend = result.backend
        self.closure_calls += 1
        elapsed = perf_counter() - t0
        self.closure_seconds += elapsed
        self.profiler.add("closure", elapsed)
        self.closure_edges_propagated += index.edges_propagated
        self.closure_word_ops += index.word_ops
        self.edges_last = index.edges
        if extra is not None:
            del self._access_of[extra[1]]
        return result

    def _closure_incremental(
        self, extra: tuple[str, StepId, str, StepKind] | None
    ) -> ClosureResult | None:
        if self._cycle_result is not None:
            # Growth cannot un-close a cycle; neither can a hypothetical.
            return self._cycle_result
        if extra is None:
            if not self._order:
                return None
            if self._last_result is not None:
                return self._last_result
            return self._recompute()
        if self._live is None:
            base = self._recompute()
            if not base.is_partial_order:
                # A hypothetical step cannot un-close an existing cycle.
                return base
        assert self._live is not None
        name, step, entity, kind = extra
        base_index = self._live.engine.index
        t0 = perf_counter()
        ep0 = base_index.edges_propagated
        wo0 = base_index.word_ops
        ea0 = self._live.engine.edges_added
        probe = self._live.clone()
        engine = probe.engine
        engine.add_step(
            name, step, self._cut_before(name, len(self._steps.get(name, ())))
        )
        if not engine.cyclic:
            for u, v in probe.fold.feed(step, entity, kind):
                if not engine.add_edge(u, v):
                    break
            engine.saturate()
        index = engine.index
        self.closure_calls += 1
        elapsed = perf_counter() - t0
        self.closure_seconds += elapsed
        self.profiler.add("closure", elapsed)
        self.closure_edges_propagated += index.edges_propagated - ep0
        self.closure_word_ops += index.word_ops - wo0
        return self._result_of(engine, ea0)

    def observe(self, name: str, step: StepId, entity: str,
                kind: StepKind, cut_levels: Mapping[int, int]) -> ClosureResult:
        """Record a performed step and return the closure state."""
        if (
            self.mode == "incremental"
            and (self._live is not None or self._cycle_result is not None)
            and self._cuts_changed(name, cut_levels)
        ):
            # Interior cut rewrites can merge/split segments, which can
            # remove rule-(b) edges — a cached cyclic verdict may no
            # longer hold, so both caches go.
            self._live = None
            self._cycle_result = None
        self._steps.setdefault(name, []).append(step)
        self._cuts[name] = dict(cut_levels)
        self._access_of[step] = (entity, kind)
        self._order.append(step)
        if self.mode == "full":
            result = self._closure()
            assert result is not None
            return result
        self._last_result = None
        cached = self._cycle_result
        if cached is not None:
            # Growth cannot un-close a cycle: skip the engine entirely.
            self.closure_calls += 1
            self._last_result = cached
            return cached
        live = self._live
        if live is None:
            return self._recompute()
        engine = live.engine
        index = engine.index
        t0 = perf_counter()
        ep0 = index.edges_propagated
        wo0 = index.word_ops
        ea0 = engine.edges_added
        engine.add_step(
            name, step, self._cut_before(name, len(self._steps[name]) - 1)
        )
        for u, v in live.fold.feed(step, entity, kind):
            if not engine.add_edge(u, v):
                break
        engine.saturate()
        self.closure_calls += 1
        elapsed = perf_counter() - t0
        self.closure_seconds += elapsed
        self.profiler.add("closure", elapsed)
        self.closure_edges_propagated += index.edges_propagated - ep0
        self.closure_word_ops += index.word_ops - wo0
        self.edges_last = index.edges
        result = self._result_of(engine, ea0)
        self._last_result = result
        if engine.cyclic:
            # Terminal: the engine stops maintaining reachability after a
            # cycle.  The scheduler will roll something back, which
            # invalidates anyway; rebuild lazily from whatever survives.
            self._live = None
            self._cycle_result = result
        return result

    def hypothetical(
        self, name: str, step: StepId, entity: str, kind: StepKind
    ) -> tuple[bool, set[StepId], set[str]]:
        """What performing ``step`` would do.

        Returns ``(acyclic, predecessors, cycle_transactions)``: the
        closure-ancestors of ``step`` when acyclic, or the transactions
        on the witnessed cycle when performing the step would close one.
        """
        result = self._closure(extra=(name, step, entity, kind))
        if result is None:
            return True, set(), set()
        if not result.is_partial_order:
            owners = {s.transaction for s in result.cycle or ()}
            return False, set(), owners
        return True, result.ancestors(step), set()

    def sync_metrics(self, metrics) -> None:
        """Publish the window's cumulative closure-cost counters into an
        engine :class:`~repro.engine.metrics.Metrics` object (the window
        lives one-to-one with a scheduler run, so plain assignment is the
        correct accumulation)."""
        metrics.closure_seconds = self.closure_seconds
        metrics.closure_edges_propagated = self.closure_edges_propagated
        metrics.closure_word_ops = self.closure_word_ops
        metrics.closure_backend = self.closure_backend

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def truncate(self, name: str, keep: int) -> None:
        """Partial rollback: keep only the first ``keep`` steps of the
        transaction's current attempt (``recovery="segment"``)."""
        steps = self._steps.get(name, [])
        if keep <= 0:
            self.drop(name)
            return
        if keep >= len(steps):
            return
        gone = set(steps[keep:])
        self._steps[name] = steps[:keep]
        self._cuts[name] = {
            g: lv
            for g, lv in self._cuts.get(name, {}).items()
            if g < keep - 1
        }
        self._order = [s for s in self._order if s not in gone]
        for step in gone:
            self._access_of.pop(step, None)
        self._invalidate()
        self._shortcut_edges = {
            (u, v)
            for u, v in self._shortcut_edges
            if u not in gone and v not in gone
        }

    def drop(self, name: str) -> None:
        """Remove an aborted attempt's steps and rebuild derived state."""
        gone = set(self._steps.pop(name, []))
        self._cuts.pop(name, None)
        self._order = [s for s in self._order if s not in gone]
        for step in gone:
            self._access_of.pop(step, None)
        # Derived edges may have been justified through the dropped steps;
        # rebuild from scratch (shortcuts are kept, see module doc).
        self._invalidate()
        self._shortcut_edges = {
            (u, v)
            for u, v in self._shortcut_edges
            if u not in gone and v not in gone
        }

    def _invalidate(self) -> None:
        self._live = None
        self._last_result = None
        self._cycle_result = None

    def mark_committed(self, name: str) -> None:
        self._committed.add(name)
        self._commits_since_prune += 1
        if self._commits_since_prune >= self.prune_interval:
            self._commits_since_prune = 0
            self._prune()

    def _prune(self) -> None:
        """Drop committed transactions that ended before every live
        attempt's first step, preserving reachability via shortcuts."""
        live_first: list[int] = []
        position = {s: i for i, s in enumerate(self._order)}
        for name, steps in self._steps.items():
            if name not in self._committed and steps:
                live_first.append(position[steps[0]])
        watermark = min(live_first) if live_first else len(self._order)
        prunable = [
            name
            for name in self._committed
            if self._steps.get(name)
            and all(position[s] < watermark for s in self._steps[name])
        ]
        if not prunable:
            return
        # Derive shortcuts from the closure over *committed* history only.
        # Edges justified through still-active attempts must not survive a
        # prune: if such an attempt later aborts, its orderings were never
        # real, and a stale shortcut could wedge a permanent cycle among
        # committed steps into the window.  Committed orderings are
        # durable, so this restriction is sound by induction.
        committed_present = sorted(
            n for n in self._committed if self._steps.get(n)
        )
        committed_steps = {
            s for n in committed_present for s in self._steps[n]
        }
        graph: nx.DiGraph = nx.DiGraph()
        if committed_present:
            spec = InterleavingSpec(
                self.nest.restrict(committed_present),
                {
                    n: BreakpointDescription.from_cut_levels(
                        self._steps[n],
                        self.k,
                        {
                            g: lv
                            for g, lv in self._cuts.get(n, {}).items()
                            if g < len(self._steps[n]) - 1 and lv <= self.k
                        },
                    )
                    for n in committed_present
                },
            )
            base = set(
                self._entity_edges(
                    [s for s in self._order if s in committed_steps]
                )
            ) | {
                (u, v)
                for u, v in self._shortcut_edges
                if u in committed_steps and v in committed_steps
            }
            graph = coherent_closure(spec, base).graph
        for name in prunable:
            for step in self._steps[name]:
                preds = list(graph.predecessors(step))
                succs = list(graph.successors(step))
                graph.remove_node(step)
                graph.add_edges_from(
                    (p, s) for p in preds for s in succs if p != s
                )
        for name in prunable:
            gone = set(self._steps.pop(name))
            self._cuts.pop(name, None)
            self._committed.discard(name)
            self._order = [s for s in self._order if s not in gone]
            for step in gone:
                self._access_of.pop(step, None)
        remaining = set(self._order)
        self._shortcut_edges = {
            (u, v)
            for u, v in graph.edges
            if u in remaining and v in remaining
        }
        self._invalidate()
        wal = self.wal
        if wal.enabled:
            wal.append(
                "prune",
                tick=self.clock(),
                pruned=sorted(prunable),
                shortcuts=len(self._shortcut_edges),
                size=self.size,
            )
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                "closure.prune",
                self.clock(),
                pruned=sorted(prunable),
                shortcuts=len(self._shortcut_edges),
                size=self.size,
            )

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def snapshot_state(self) -> bytes:
        """The window's dynamic state as one pickle blob.

        The incremental caches (live engine, last/cyclic verdicts) are
        captured *wholesale* rather than rebuilt on restore: a lazy
        rebuild bumps the closure-cost counters by the rebuild's cost,
        which would make a recovered run's counter trajectory diverge
        from the live one.  ``closure_seconds`` is wall time and is the
        one counter exempted from the replay-identity invariant.
        """
        payload = {
            "steps": {n: list(s) for n, s in self._steps.items()},
            "cuts": {n: dict(c) for n, c in self._cuts.items()},
            "access_of": dict(self._access_of),
            "order": list(self._order),
            "committed": self._committed,
            "shortcut_edges": self._shortcut_edges,
            "commits_since_prune": self._commits_since_prune,
            "live": self._live,
            "last_result": self._last_result,
            "cycle_result": self._cycle_result,
            "closure_backend": self.closure_backend,
            "closure_calls": self.closure_calls,
            "edges_last": self.edges_last,
            "closure_seconds": self.closure_seconds,
            "closure_edges_propagated": self.closure_edges_propagated,
            "closure_word_ops": self.closure_word_ops,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    def restore_state(self, blob: bytes) -> None:
        payload = pickle.loads(blob)
        self._steps = payload["steps"]
        self._cuts = payload["cuts"]
        self._access_of = payload["access_of"]
        self._order = payload["order"]
        self._committed = payload["committed"]
        self._shortcut_edges = payload["shortcut_edges"]
        self._commits_since_prune = payload["commits_since_prune"]
        self._live = payload["live"]
        self._last_result = payload["last_result"]
        self._cycle_result = payload["cycle_result"]
        if self._live is not None:
            # The unpickled engine carries a *copy* of the nest; future
            # ingests mutate the window's live nest object, so the
            # restored engine must observe the same instance.
            self._live.engine.nest = self.nest
        self.closure_backend = payload["closure_backend"]
        self.closure_calls = payload["closure_calls"]
        self.edges_last = payload["edges_last"]
        self.closure_seconds = payload["closure_seconds"]
        self.closure_edges_propagated = payload["closure_edges_propagated"]
        self.closure_word_ops = payload["closure_word_ops"]
