"""Segmentations and k-level breakpoint descriptions (Section 4.2).

Given a totally ordered set ``(X, <=)`` — in practice the steps of one
execution of one transaction — an equivalence relation on ``X`` is a
*<=-segmentation* when every class is a run of consecutive elements.  A
*k-level breakpoint description* ``B`` is a k-nest for ``X`` in which every
``B(i)`` is a segmentation: ``B(1)`` is the whole sequence (no interior
breakpoints: the transaction is fully atomic at level 1), ``B(k)`` is all
singletons (breakpoints everywhere), and each level refines the previous
one, i.e. higher levels only *add* breakpoints.

We represent a segmentation by its set of *cuts*: cut ``j`` sits in the gap
between element ``j`` and element ``j + 1`` (0-based, so a sequence of
``n`` elements has gaps ``0 .. n - 2``).  Refinement then reads as plain
set containment of cut sets, which makes validation and the
``segment_last`` query used throughout the coherence machinery cheap.
"""

from __future__ import annotations

import bisect
from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TypeVar

from repro.errors import SpecificationError

E = TypeVar("E", bound=Hashable)

__all__ = ["BreakpointDescription"]


class BreakpointDescription:
    """A k-level breakpoint description for one totally ordered set.

    Parameters
    ----------
    elements:
        The totally ordered set, smallest first; must be distinct.
    cuts_per_level:
        ``cuts_per_level[i - 1]`` is the set of gap indices that are
        breakpoints at level ``i``.  Level 1 must be empty, level ``k``
        must contain every gap, and levels must be monotone under
        inclusion.
    """

    __slots__ = ("_elements", "_index", "_cuts", "_k")

    def __init__(
        self,
        elements: Sequence[E],
        cuts_per_level: Sequence[Iterable[int]],
    ) -> None:
        self._elements: tuple[E, ...] = tuple(elements)
        self._index: dict[E, int] = {e: i for i, e in enumerate(self._elements)}
        if len(self._index) != len(self._elements):
            raise SpecificationError("elements of a total order must be distinct")
        if not cuts_per_level:
            raise SpecificationError("need at least one level")
        self._k = len(cuts_per_level)
        n_gaps = max(len(self._elements) - 1, 0)
        all_gaps = frozenset(range(n_gaps))
        self._cuts: list[frozenset[int]] = []
        for level0, cuts in enumerate(cuts_per_level):
            cut_set = frozenset(cuts)
            bad = cut_set - all_gaps
            if bad:
                raise SpecificationError(
                    f"level {level0 + 1} has out-of-range cuts {sorted(bad)}"
                )
            self._cuts.append(cut_set)
        if self._cuts[0]:
            raise SpecificationError("B(1) must have no interior breakpoints")
        if self._cuts[-1] != all_gaps:
            raise SpecificationError("B(k) must cut between every pair of steps")
        for i in range(1, self._k):
            if not self._cuts[i - 1] <= self._cuts[i]:
                raise SpecificationError(
                    f"B({i + 1}) must refine B({i}): every level-{i} breakpoint "
                    f"must also be a level-{i + 1} breakpoint"
                )

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_classes(
        cls,
        elements: Sequence[E],
        partitions: Sequence[Iterable[Iterable[E]]],
    ) -> "BreakpointDescription":
        """Build from paper-style equivalence classes.

        ``partitions[i - 1]`` lists the ``B(i)``-classes; each class must
        be a set of consecutive elements (a segment).  This is the literal
        form used by the paper's banking example, e.g.
        ``B(2)``'s classes ``{w1, w2, w3}`` and ``{d1, d2}``.
        """
        order = {e: i for i, e in enumerate(elements)}
        cuts_per_level: list[set[int]] = []
        for level0, classes in enumerate(partitions):
            seen: set[E] = set()
            boundaries: set[int] = set()
            for raw in classes:
                idx = sorted(order[e] for e in raw)
                if not idx:
                    raise SpecificationError(
                        f"level {level0 + 1} contains an empty class"
                    )
                if idx != list(range(idx[0], idx[-1] + 1)):
                    raise SpecificationError(
                        f"level {level0 + 1} class {sorted(map(repr, raw))} is "
                        "not a segment of consecutive elements"
                    )
                seen.update(raw)
                if idx[0] > 0:
                    boundaries.add(idx[0] - 1)
                if idx[-1] < len(elements) - 1:
                    boundaries.add(idx[-1])
            if seen != set(elements):
                raise SpecificationError(
                    f"level {level0 + 1} classes do not cover all elements"
                )
            cuts_per_level.append(boundaries)
        return cls(elements, cuts_per_level)

    @classmethod
    def from_cut_levels(
        cls,
        elements: Sequence[E],
        k: int,
        cut_levels: Mapping[int, int] | None = None,
    ) -> "BreakpointDescription":
        """Build from per-gap *minimum breakpoint levels*.

        ``cut_levels[gap] = i`` declares that the gap is a breakpoint at
        level ``i`` and (by refinement) every level above; gaps not
        mentioned are breakpoints only at the mandatory level ``k``.  This
        matches the transaction-program API, where a program emits
        ``Breakpoint(level=i)`` between steps.
        """
        cut_levels = dict(cut_levels or {})
        n_gaps = max(len(elements) - 1, 0)
        for gap, lvl in cut_levels.items():
            if not 0 <= gap < n_gaps:
                raise SpecificationError(f"gap {gap} out of range")
            if not 2 <= lvl <= k:
                raise SpecificationError(
                    f"declared breakpoint level must be in [2, {k}], got {lvl}"
                )
        cuts_per_level: list[set[int]] = [set() for _ in range(k)]
        cuts_per_level[k - 1] = set(range(n_gaps))
        for gap, lvl in cut_levels.items():
            for i in range(lvl, k + 1):
                cuts_per_level[i - 1].add(gap)
        return cls(elements, cuts_per_level)

    @classmethod
    def serial(cls, elements: Sequence[E]) -> "BreakpointDescription":
        """The unique 2-level description: no interior breakpoints.

        With the flat 2-nest this yields classical serializability.
        """
        return cls.from_cut_levels(elements, k=2)

    @classmethod
    def free(cls, elements: Sequence[E], k: int) -> "BreakpointDescription":
        """Breakpoints everywhere from level 2 up: arbitrary interleaving
        with every transaction not forced to level 1."""
        n_gaps = max(len(elements) - 1, 0)
        return cls.from_cut_levels(
            elements, k, {gap: 2 for gap in range(n_gaps)}
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        return self._k

    @property
    def elements(self) -> tuple[E, ...]:
        return self._elements

    def __len__(self) -> int:
        return len(self._elements)

    def __contains__(self, element: object) -> bool:
        return element in self._index

    def index_of(self, element: E) -> int:
        try:
            return self._index[element]
        except KeyError:
            raise SpecificationError(f"unknown element {element!r}") from None

    def cuts(self, level: int) -> frozenset[int]:
        """Gap indices that are breakpoints at ``level``."""
        self._require_level(level)
        return self._cuts[level - 1]

    def is_cut(self, level: int, gap: int) -> bool:
        self._require_level(level)
        return gap in self._cuts[level - 1]

    def min_cut_level(self, gap: int) -> int:
        """The smallest level at which ``gap`` is a breakpoint."""
        for i in range(1, self._k + 1):
            if gap in self._cuts[i - 1]:
                return i
        raise SpecificationError(f"gap {gap} out of range")

    def segment_bounds(self, level: int, element: E) -> tuple[int, int]:
        """Inclusive ``(first, last)`` indices of the level-``level``
        segment containing ``element``."""
        idx = self.index_of(element)
        cuts = sorted(self._cuts[level - 1])
        # first cut at or after idx bounds the segment on the right
        pos = bisect.bisect_left(cuts, idx)
        hi = cuts[pos] if pos < len(cuts) else len(self._elements) - 1
        lo = cuts[pos - 1] + 1 if pos > 0 else 0
        return lo, hi

    def segment_of(self, level: int, element: E) -> tuple[E, ...]:
        lo, hi = self.segment_bounds(level, element)
        return self._elements[lo : hi + 1]

    def segment_last(self, level: int, element: E) -> E:
        """The last element of ``element``'s level-``level`` segment.

        This is the single quantity the coherent-closure rule needs: if a
        step ``a`` precedes a foreign step ``b``, then ``segment_last``
        of ``a`` at the appropriate level must also precede ``b``.
        """
        _, hi = self.segment_bounds(level, element)
        return self._elements[hi]

    def same_segment(self, level: int, a: E, b: E) -> bool:
        lo, hi = self.segment_bounds(level, a)
        return lo <= self.index_of(b) <= hi

    def segments(self, level: int) -> list[tuple[E, ...]]:
        """All level-``level`` segments in order."""
        self._require_level(level)
        if not self._elements:
            return []
        out: list[tuple[E, ...]] = []
        start = 0
        for gap in sorted(self._cuts[level - 1]):
            out.append(self._elements[start : gap + 1])
            start = gap + 1
        out.append(self._elements[start:])
        return out

    def classes(self, level: int) -> list[frozenset[E]]:
        """Paper-style equivalence classes of ``B(level)``."""
        return [frozenset(seg) for seg in self.segments(level)]

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------

    def truncate(self, k: int) -> "BreakpointDescription":
        """Coarsen to ``k`` levels: keep ``B(1..k-1)``, force ``B(k)`` to
        singletons (companion of :meth:`KNest.truncate`)."""
        if not 2 <= k <= self._k:
            raise SpecificationError(
                f"truncation depth must be in [2, {self._k}], got {k}"
            )
        n_gaps = max(len(self._elements) - 1, 0)
        cuts = [set(self._cuts[i]) for i in range(k - 1)]
        cuts.append(set(range(n_gaps)))
        return BreakpointDescription(self._elements, cuts)

    def prefix(self, length: int) -> "BreakpointDescription":
        """The description induced on the first ``length`` elements.

        Used by on-line schedulers, which only ever see a prefix of each
        transaction's eventual execution.
        """
        if not 0 <= length <= len(self._elements):
            raise SpecificationError(f"bad prefix length {length}")
        gaps = max(length - 1, 0)
        cuts = [{g for g in level_cuts if g < gaps} for level_cuts in self._cuts]
        if length:
            cuts[-1] = set(range(gaps))
        return BreakpointDescription(self._elements[:length], cuts)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _require_level(self, level: int) -> None:
        if not 1 <= level <= self._k:
            raise SpecificationError(
                f"level must be in [1, {self._k}], got {level}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BreakpointDescription):
            return NotImplemented
        return self._elements == other._elements and self._cuts == other._cuts

    def __hash__(self) -> int:
        return hash((self._elements, tuple(self._cuts)))

    def __repr__(self) -> str:
        return (
            f"BreakpointDescription(k={self._k}, n={len(self._elements)})"
        )
