"""Multilevel atomicity and correctability (Sections 4.3 and 5.2).

Given a k-nest ``pi`` over transactions and a k-level breakpoint
specification (both bundled into an
:class:`~repro.core.interleaving.InterleavingSpec` for the transactions and
step sets of one particular execution):

* an execution is **multilevel atomic** when its total order of steps is
  coherent — :func:`is_multilevel_atomic`;
* an execution is **correctable** when it is *equivalent* to a multilevel
  atomic one, i.e. some coherent total order contains its dependency
  partial order.  **Theorem 2** characterises this: an execution ``e`` is
  correctable iff the coherent closure of its dependency order ``<=_e`` is
  a partial order — :func:`is_correctable` / :func:`check_correctability`;
* when correctable, Lemma 1's staged extension *constructs* the equivalent
  multilevel-atomic schedule — :func:`equivalent_atomic_order`.

This module works at the abstract step level; :mod:`repro.model` derives
the specification and dependency relation from concrete executions of
transaction programs over entities.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass
from typing import TypeVar

from repro.core.coherence import (
    ClosureResult,
    coherent_closure,
    is_coherent_total_order,
    total_order_violations,
)
from repro.core.extension import extend_to_coherent_total_order
from repro.core.interleaving import InterleavingSpec
from repro.errors import NotCorrectableError

S = TypeVar("S", bound=Hashable)

__all__ = [
    "CorrectabilityReport",
    "is_multilevel_atomic",
    "atomicity_violations",
    "check_correctability",
    "is_correctable",
    "equivalent_atomic_order",
]


@dataclass
class CorrectabilityReport:
    """The full outcome of a Theorem 2 check.

    Attributes
    ----------
    correctable:
        Whether some multilevel-atomic execution is equivalent to the one
        checked.
    closure:
        The coherent-closure computation (graph, cycle witness, costs).
    witness:
        When correctable and ``witness`` was requested, an equivalent
        multilevel-atomic total order of the steps.
    """

    correctable: bool
    closure: ClosureResult
    witness: list | None = None

    def require_correctable(self) -> None:
        if not self.correctable:
            raise NotCorrectableError(
                f"coherent closure has a cycle: {self.closure.cycle}"
            )


def is_multilevel_atomic(spec: InterleavingSpec, sequence: Sequence[S]) -> bool:
    """Whether a step sequence is multilevel atomic for the specification,
    i.e. whether its total order is coherent (Section 4.3)."""
    return is_coherent_total_order(spec, sequence)


def atomicity_violations(spec: InterleavingSpec, sequence: Sequence[S]):
    """The coherence violations that make a sequence non-atomic (empty for
    multilevel-atomic sequences)."""
    return total_order_violations(spec, sequence)


def check_correctability(
    spec: InterleavingSpec,
    dependency: Iterable[tuple[S, S]],
    witness: bool = False,
) -> CorrectabilityReport:
    """Theorem 2: decide correctability of an execution from its
    dependency order.

    Parameters
    ----------
    spec:
        Nest and breakpoint descriptions for the execution's transactions.
    dependency:
        The pairs of the dependency order ``<=_e`` (the per-transaction
        chains are implied and may be omitted).
    witness:
        When true and the execution is correctable, additionally construct
        an equivalent multilevel-atomic total order via Lemma 1.
    """
    closure = coherent_closure(spec, dependency)
    if not closure.is_partial_order:
        return CorrectabilityReport(correctable=False, closure=closure)
    order = None
    if witness:
        order = extend_to_coherent_total_order(spec, closure.graph)
    return CorrectabilityReport(correctable=True, closure=closure, witness=order)


def is_correctable(
    spec: InterleavingSpec, dependency: Iterable[tuple[S, S]]
) -> bool:
    """Whether an execution with dependency order ``dependency`` is
    equivalent to some multilevel-atomic execution (Theorem 2)."""
    return check_correctability(spec, dependency).correctable


def equivalent_atomic_order(
    spec: InterleavingSpec, dependency: Iterable[tuple[S, S]]
) -> list[S]:
    """The multilevel-atomic schedule equivalent to the given execution.

    Raises :class:`~repro.errors.NotCorrectableError` when none exists.
    """
    report = check_correctability(spec, dependency, witness=True)
    report.require_correctable()
    assert report.witness is not None
    return report.witness
