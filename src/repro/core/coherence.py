"""Coherent relations and the coherent closure (Section 4.2).

Let ``pi`` be a k-nest for a transaction set ``T`` and ``beta`` a k-level
interleaving specification (bundled here as an
:class:`~repro.core.interleaving.InterleavingSpec`).  A relation ``R`` on
the union of all step sets is *coherent* when

(a) ``R`` contains each per-transaction total order ``<=_t``, and

(b) whenever ``level(t, t') = i``, steps ``a <_t a'`` lie in the same
    ``B_t(i)``-segment, and ``b`` is a step of ``t'``:
    ``(a, b) in R`` implies ``(a', b) in R``.

Intuitively (b) says a foreign step that follows any part of a segment must
follow the whole rest of the segment — i.e. it cannot land *inside* the
segment.  The *coherent closure* of ``R`` is the smallest coherent relation
containing ``R``; Theorem 2 shows an execution is correctable exactly when
the coherent closure of its dependency order is a partial order (acyclic).

Following the paper's own usage (its worked example states that the
coherent closure of a relation *is* a transitively closed partial order),
we compute the closure as the joint fixpoint of rule (b) **and**
transitivity.  Acyclicity of this fixpoint coincides with acyclicity of the
rule-(b)-only closure, because transitive edges are sound consequences of
any coherent total order extension, but the joint fixpoint is the object
Lemma 1's extension algorithm needs.

Two implementations are provided:

* :func:`coherent_closure_pairs` — an exact pair-set fixpoint with
  incremental transitive closure.  Quadratic in the number of steps; use
  it for witness construction and small examples.
* :func:`coherent_closure` — a scalable graph fixpoint that keeps only
  *generating* edges and saturates rule (b) through bitset reachability.
  Near-linear per iteration in practice; use it for checking large
  schedules (experiment E1).

Because rule (b) fires on reachability and the chain ``a <_t segment_last``
is always present, it suffices to propagate the single pair
``(segment_last(a, i), b)`` for each cross pair ``(a, b)``: the remaining
``(a', b)`` pairs follow transitively.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass, field
from typing import TypeVar

import networkx as nx

from repro.core.interleaving import InterleavingSpec
from repro.errors import NotAPartialOrderError

S = TypeVar("S", bound=Hashable)

__all__ = [
    "Violation",
    "ClosureResult",
    "coherence_violations",
    "is_coherent",
    "coherent_closure_pairs",
    "coherent_closure",
    "is_coherent_total_order",
    "total_order_violations",
]


@dataclass(frozen=True)
class Violation:
    """One witnessed failure of coherence.

    ``kind`` is ``"missing-order"`` for condition (a) (a pair of some
    ``<=_t`` absent from ``R``) or ``"segment-break"`` for condition (b)
    (a foreign step allowed inside a segment).  ``detail`` carries the
    witnessing steps.
    """

    kind: str
    detail: tuple


@dataclass
class ClosureResult:
    """Outcome of a coherent-closure computation.

    Attributes
    ----------
    is_partial_order:
        ``True`` iff the closure is acyclic — by Theorem 2, iff the seed
        execution is correctable.
    graph:
        The generating-edge digraph: chain edges of every ``<=_t``, the
        seed pairs, and all rule-(b) edges added during saturation.  Its
        reachability relation is the coherent closure.
    cycle:
        When cyclic, one witnessing cycle as a list of steps (closed:
        first == last); ``None`` otherwise.
    """

    is_partial_order: bool
    graph: nx.DiGraph
    cycle: list | None = None
    iterations: int = 0
    edges_added: int = field(default=0)

    def pairs(self) -> set[tuple]:
        """Materialise the closure as an explicit pair set (reachability
        of the generating graph).  Quadratic; intended for small inputs."""
        out: set[tuple] = set()
        for node in self.graph.nodes:
            for desc in nx.descendants(self.graph, node):
                out.add((node, desc))
        return out

    def require_partial_order(self) -> None:
        if not self.is_partial_order:
            raise NotAPartialOrderError(
                f"coherent closure contains a cycle: {self.cycle}"
            )


# ---------------------------------------------------------------------------
# exact definition checks
# ---------------------------------------------------------------------------


def coherence_violations(
    spec: InterleavingSpec, relation: Iterable[tuple[S, S]]
) -> list[Violation]:
    """All violations of coherence conditions (a) and (b) by ``relation``.

    ``relation`` is taken literally (no implicit transitive closure), to
    match the paper's examples where relations are given as explicit
    transitively closed pair sets.
    """
    pairs = set(relation)
    violations: list[Violation] = []
    # (a) R contains each <=_t (all ordered pairs, not only consecutive).
    for txn in spec.transactions:
        elems = spec.description(txn).elements
        for i, a in enumerate(elems):
            for b in elems[i + 1 :]:
                if (a, b) not in pairs:
                    violations.append(Violation("missing-order", (a, b)))
    # (b) segment atomicity.
    for a, b in pairs:
        ta = spec.transaction_of(a)
        tb = spec.transaction_of(b)
        if ta == tb:
            continue
        level = spec.level(ta, tb)
        desc = spec.description(ta)
        lo, hi = desc.segment_bounds(level, a)
        pos = desc.index_of(a)
        for later in desc.elements[pos + 1 : hi + 1]:
            if (later, b) not in pairs:
                violations.append(Violation("segment-break", (a, later, b)))
    return violations


def is_coherent(
    spec: InterleavingSpec, relation: Iterable[tuple[S, S]]
) -> bool:
    """Whether ``relation`` is coherent for the specification."""
    return not coherence_violations(spec, relation)


# ---------------------------------------------------------------------------
# exact closure (pair-set fixpoint)
# ---------------------------------------------------------------------------


def coherent_closure_pairs(
    spec: InterleavingSpec, seed: Iterable[tuple[S, S]]
) -> tuple[set[tuple[S, S]], bool]:
    """The coherent closure as an explicit, transitively closed pair set.

    Returns ``(pairs, is_partial_order)``.  The fixpoint always runs to
    completion, so when the closure is cyclic the returned set contains the
    reflexive pairs ``(x, x)`` witnessing the cycles — exactly what the
    paper's R3/R4 example inspects.
    """
    succ: dict[S, set[S]] = defaultdict(set)
    pred: dict[S, set[S]] = defaultdict(set)
    worklist: deque[tuple[S, S]] = deque()

    def add_edge(u: S, v: S) -> None:
        if v in succ[u]:
            return
        sources = pred[u] | {u}
        targets = succ[v] | {v}
        for x in sources:
            fresh = targets - succ[x]
            if not fresh:
                continue
            succ[x].update(fresh)
            for y in fresh:
                pred[y].add(x)
                worklist.append((x, y))

    for u, v in spec.chain_pairs():
        add_edge(u, v)
    for u, v in seed:
        add_edge(u, v)
    while worklist:
        x, y = worklist.popleft()
        if x == y:
            continue
        tx = spec.transaction_of(x)
        ty = spec.transaction_of(y)
        if tx == ty:
            continue
        w = spec.segment_last(x, spec.level(tx, ty))
        add_edge(w, y)

    acyclic = all(x not in targets for x, targets in succ.items())
    pairs = {(x, y) for x, targets in succ.items() for y in targets}
    return pairs, acyclic


# ---------------------------------------------------------------------------
# scalable closure (generating-edge graph fixpoint)
# ---------------------------------------------------------------------------


class _PartnerMasks:
    """Per-(transaction, level) bitmasks of partner steps.

    ``partners(t, i)`` is the bitmask over step indices of every step
    owned by a transaction ``t'`` with ``level(t, t') == i``; this is the
    only filter rule (b) needs.  Computed from per-level class masks so
    the cost is ``O(k * n)`` instead of ``O(|T|^2)``.
    """

    def __init__(self, spec: InterleavingSpec, bit_of: dict[S, int]) -> None:
        self._spec = spec
        self._bit_of = bit_of
        self._class_masks: list[dict[int, int]] = []
        nest = spec.nest
        for level in range(1, nest.k + 1):
            masks: dict[int, int] = defaultdict(int)
            for txn in spec.transactions:
                cid = nest.class_id(level, txn)
                for step in spec.description(txn).elements:
                    masks[cid] |= 1 << bit_of[step]
            self._class_masks.append(dict(masks))

    def partners(self, txn, level: int) -> int:
        nest = self._spec.nest
        same = self._class_masks[level - 1].get(nest.class_id(level, txn), 0)
        if level + 1 <= nest.k:
            closer = self._class_masks[level].get(
                nest.class_id(level + 1, txn), 0
            )
        else:
            closer = 0
        return same & ~closer


def coherent_closure(
    spec: InterleavingSpec,
    seed: Iterable[tuple[S, S]],
    max_iterations: int = 10_000,
) -> ClosureResult:
    """Compute the coherent closure of ``seed`` as a generating-edge graph.

    The fixpoint alternates (i) bitset reachability over the current graph
    with (ii) segment saturation: for every ``B_t(i)``-segment ``S`` with
    last step ``w`` and every partner step ``b`` (of a transaction at
    level exactly ``i`` from ``t``) reachable from some step of ``S`` but
    not from ``w``, add the edge ``w -> b``.  Reachability of the final
    graph is exactly the transitive + rule-(b) closure.

    Stops immediately (with a witness) once a cycle appears — by Theorem 2
    the seed execution is then not correctable, and further saturation
    cannot remove a cycle.
    """
    steps = sorted(spec.steps, key=repr)
    bit_of = {step: i for i, step in enumerate(steps)}
    masks_by_pair = _PartnerMasks(spec, bit_of)

    graph: nx.DiGraph = nx.DiGraph()
    graph.add_nodes_from(steps)
    graph.add_edges_from(spec.chain_pairs())
    graph.add_edges_from(seed)

    iterations = 0
    edges_added = 0
    while True:
        iterations += 1
        if iterations > max_iterations:  # pragma: no cover - safety valve
            raise NotAPartialOrderError("closure fixpoint failed to converge")
        try:
            topo = list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible:
            cycle_edges = nx.find_cycle(graph)
            cycle = [u for u, _ in cycle_edges] + [cycle_edges[0][0]]
            return ClosureResult(
                is_partial_order=False,
                graph=graph,
                cycle=cycle,
                iterations=iterations,
                edges_added=edges_added,
            )
        reach: dict[S, int] = {}
        for node in reversed(topo):
            mask = 1 << bit_of[node]
            for succ in graph.successors(node):
                mask |= reach[succ]
            reach[node] = mask

        changed = False
        for txn in spec.transactions:
            desc = spec.description(txn)
            for level in range(1, spec.k):
                partner_mask = masks_by_pair.partners(txn, level)
                if not partner_mask:
                    continue
                for segment in desc.segments(level):
                    last = segment[-1]
                    union = 0
                    for step in segment:
                        union |= reach[step]
                    missing = union & partner_mask & ~reach[last]
                    while missing:
                        low = missing & -missing
                        target = steps[low.bit_length() - 1]
                        graph.add_edge(last, target)
                        edges_added += 1
                        changed = True
                        missing ^= low
                        # One edge covers everything reachable from its
                        # target (at this pass's snapshot): skip those to
                        # keep the generating graph sparse.
                        missing &= ~reach[target]
        if not changed:
            return ClosureResult(
                is_partial_order=True,
                graph=graph,
                cycle=None,
                iterations=iterations,
                edges_added=edges_added,
            )


# ---------------------------------------------------------------------------
# total orders (multilevel-atomicity checking)
# ---------------------------------------------------------------------------


def total_order_violations(
    spec: InterleavingSpec, sequence: Sequence[S]
) -> list[Violation]:
    """Coherence violations of a *total* order given as a step sequence.

    A total order is coherent iff (a) it orders each transaction's steps
    consistently with ``<=_t`` and (b) no step of ``t'`` falls strictly
    inside the execution span of a ``B_t(level(t, t'))``-segment.  The
    check runs in ``O(n * k * log n)`` using per-(class, level) sorted
    position arrays.
    """
    position = {step: i for i, step in enumerate(sequence)}
    if len(position) != len(sequence):
        raise NotAPartialOrderError("total order repeats a step")
    violations: list[Violation] = []
    # (a) subsequence check per transaction.
    for txn in spec.transactions:
        elems = spec.description(txn).elements
        prev = None
        for step in elems:
            if step not in position:
                raise NotAPartialOrderError(
                    f"total order is missing step {step!r} of {txn!r}"
                )
            if prev is not None and position[prev] > position[step]:
                violations.append(Violation("missing-order", (prev, step)))
            prev = step
    if len(position) != sum(
        len(spec.description(t).elements) for t in spec.transactions
    ):
        raise NotAPartialOrderError("total order contains foreign steps")

    # Per-level, per-class sorted position arrays over *transaction class*
    # membership: positions of all steps owned by the class's transactions.
    nest = spec.nest
    class_positions: list[dict[int, list[int]]] = []
    for level in range(1, nest.k + 1):
        per_class: dict[int, list[int]] = defaultdict(list)
        for txn in spec.transactions:
            cid = nest.class_id(level, txn)
            per_class[cid].extend(
                position[s] for s in spec.description(txn).elements
            )
        class_positions.append({c: sorted(p) for c, p in per_class.items()})

    import bisect

    def count_between(level: int, cid: int, lo: int, hi: int) -> int:
        arr = class_positions[level - 1].get(cid, [])
        return bisect.bisect_left(arr, hi) - bisect.bisect_right(arr, lo)

    # (b) no partner step strictly inside a segment span.
    for txn in spec.transactions:
        desc = spec.description(txn)
        for level in range(1, spec.k):
            cid_same = nest.class_id(level, txn)
            cid_closer = (
                nest.class_id(level + 1, txn) if level + 1 <= nest.k else None
            )
            for segment in desc.segments(level):
                if len(segment) < 2:
                    continue
                lo = position[segment[0]]
                hi = position[segment[-1]]
                inside = count_between(level, cid_same, lo, hi)
                if cid_closer is not None:
                    inside -= count_between(level + 1, cid_closer, lo, hi)
                # steps of txn itself inside the span are fine; they are
                # counted in the *closer* class at level + 1 already (txn is
                # pi(level+1)-equivalent to itself) so no correction needed.
                if inside > 0:
                    offender = _find_intruder(
                        spec, sequence, txn, level, lo, hi
                    )
                    violations.append(
                        Violation("segment-break", (segment[0], offender, segment[-1]))
                    )
    return violations


def _find_intruder(
    spec: InterleavingSpec,
    sequence: Sequence[S],
    txn,
    level: int,
    lo: int,
    hi: int,
):
    """Locate one partner step strictly inside ``(lo, hi)`` (slow path,
    only taken when a violation is being reported)."""
    for pos in range(lo + 1, hi):
        step = sequence[pos]
        other = spec.transaction_of(step)
        if other != txn and spec.level(txn, other) == level:
            return step
    return None


def is_coherent_total_order(
    spec: InterleavingSpec, sequence: Sequence[S]
) -> bool:
    """Whether the given step sequence is a coherent total order — i.e.
    whether the execution it describes is multilevel atomic."""
    return not total_order_violations(spec, sequence)
