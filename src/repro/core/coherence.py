"""Coherent relations and the coherent closure (Section 4.2).

Let ``pi`` be a k-nest for a transaction set ``T`` and ``beta`` a k-level
interleaving specification (bundled here as an
:class:`~repro.core.interleaving.InterleavingSpec`).  A relation ``R`` on
the union of all step sets is *coherent* when

(a) ``R`` contains each per-transaction total order ``<=_t``, and

(b) whenever ``level(t, t') = i``, steps ``a <_t a'`` lie in the same
    ``B_t(i)``-segment, and ``b`` is a step of ``t'``:
    ``(a, b) in R`` implies ``(a', b) in R``.

Intuitively (b) says a foreign step that follows any part of a segment must
follow the whole rest of the segment — i.e. it cannot land *inside* the
segment.  The *coherent closure* of ``R`` is the smallest coherent relation
containing ``R``; Theorem 2 shows an execution is correctable exactly when
the coherent closure of its dependency order is a partial order (acyclic).

Following the paper's own usage (its worked example states that the
coherent closure of a relation *is* a transitively closed partial order),
we compute the closure as the joint fixpoint of rule (b) **and**
transitivity.  Acyclicity of this fixpoint coincides with acyclicity of the
rule-(b)-only closure, because transitive edges are sound consequences of
any coherent total order extension, but the joint fixpoint is the object
Lemma 1's extension algorithm needs.

Two implementations are provided:

* :func:`coherent_closure_pairs` — an exact pair-set fixpoint with
  incremental transitive closure.  Quadratic in the number of steps; use
  it for witness construction and small examples.
* :func:`coherent_closure` — a scalable fixpoint over
  :class:`ClosureEngine`, which keeps only *generating* edges and
  maintains reachability **incrementally** (Italiano-style online edge
  insertion over dense bitsets, see :mod:`repro.core.reach`) while a
  dirty-segment worklist saturates rule (b).  Each inserted edge costs
  O(affected) instead of a full reachability recomputation; use it for
  checking large schedules (experiment E1) and for the on-line closure
  window (:mod:`repro.engine.closure_window`), which keeps one engine
  alive across performed steps.

Because rule (b) fires on reachability and the chain ``a <_t segment_last``
is always present, it suffices to propagate the single pair
``(segment_last(a, i), b)`` for each cross pair ``(a, b)``: the remaining
``(a', b)`` pairs follow transitively.
"""

from __future__ import annotations

from collections import defaultdict, deque
from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass
from typing import TypeVar

import networkx as nx

from repro.core import closure_kernel
from repro.core.interleaving import InterleavingSpec
from repro.core.reach import ReachabilityIndex, iter_bits
from repro.errors import NotAPartialOrderError

S = TypeVar("S", bound=Hashable)

__all__ = [
    "Violation",
    "ClosureResult",
    "ClosureEngine",
    "coherence_violations",
    "is_coherent",
    "coherent_closure_pairs",
    "coherent_closure",
    "is_coherent_total_order",
    "segment_spans",
    "total_order_violations",
]


def segment_spans(
    count: int, cuts: Sequence[int | None], level: int
) -> list[tuple[int, int]]:
    """The ``B_t(level)``-segments of a ``count``-step transaction as
    ``(first_index, last_index)`` spans (inclusive, possibly one step).

    ``cuts[g]`` is the minimum breakpoint level declared for the gap
    after step ``g`` (``None`` when uncut): a segment ends at every gap
    whose cut is at or below ``level``, and the trailing span is the
    still-open tail.  This is the single source of segmentation shared
    by the batch loader and (through the engine's segment list) the
    vectorized closure kernel — the backends cannot drift apart on
    where segments begin and end.
    """
    spans: list[tuple[int, int]] = []
    start = 0
    for gap in range(count - 1):
        cut = cuts[gap]
        if cut is not None and cut <= level:
            spans.append((start, gap))
            start = gap + 1
    spans.append((start, count - 1))
    return spans


@dataclass(frozen=True)
class Violation:
    """One witnessed failure of coherence.

    ``kind`` is ``"missing-order"`` for condition (a) (a pair of some
    ``<=_t`` absent from ``R``) or ``"segment-break"`` for condition (b)
    (a foreign step allowed inside a segment).  ``detail`` carries the
    witnessing steps.
    """

    kind: str
    detail: tuple


class ClosureResult:
    """Outcome of a coherent-closure computation.

    Attributes
    ----------
    is_partial_order:
        ``True`` iff the closure is acyclic — by Theorem 2, iff the seed
        execution is correctable.
    graph:
        The generating-edge digraph: chain edges of every ``<=_t``, the
        seed pairs, and all rule-(b) edges added during saturation.  Its
        reachability relation is the coherent closure.  Built lazily from
        the bitset index — the hot path never touches networkx.
    cycle:
        When cyclic, one witnessing cycle as a list of steps (closed:
        first == last); ``None`` otherwise.
    index:
        The :class:`~repro.core.reach.ReachabilityIndex` the closure was
        computed in.  Results produced by a live
        :class:`~repro.engine.closure_window.ClosureWindow` share the
        window's persistent index, so ``graph``/``pairs`` reflect the
        state at *access* time; batch results own their index.
    backend:
        Which closure backend produced this result: ``"python"`` (the
        incremental engine) or ``"numpy"`` (the vectorized kernel,
        :mod:`repro.core.closure_kernel`).  The closure itself is
        backend-independent.
    """

    __slots__ = (
        "is_partial_order",
        "cycle",
        "iterations",
        "edges_added",
        "index",
        "backend",
        "_graph",
    )

    def __init__(
        self,
        is_partial_order: bool,
        cycle: list | None = None,
        iterations: int = 0,
        edges_added: int = 0,
        index: ReachabilityIndex | None = None,
        graph: nx.DiGraph | None = None,
        backend: str = "python",
    ) -> None:
        self.is_partial_order = is_partial_order
        self.cycle = cycle
        self.iterations = iterations
        self.edges_added = edges_added
        self.index = index
        self.backend = backend
        self._graph = graph

    @property
    def graph(self) -> nx.DiGraph:
        if self._graph is None:
            graph: nx.DiGraph = nx.DiGraph()
            if self.index is not None:
                graph.add_nodes_from(self.index.nodes)
                graph.add_edges_from(self.index.iter_edges())
            self._graph = graph
        return self._graph

    def pairs(self) -> set[tuple]:
        """Materialise the closure as an explicit pair set.

        When acyclic this is a single bitset sweep over the reachability
        index — output-linear, safe for large closures.  (Cyclic results
        fall back to graph searches; they exist only to carry a witness.)
        """
        if self.index is not None and not self.index.cyclic:
            return self.index.pairs()
        out: set[tuple] = set()
        for node in self.graph.nodes:
            for desc in nx.descendants(self.graph, node):
                out.add((node, desc))
        return out

    def ancestors(self, node) -> set:
        """All steps that precede ``node`` in the closure (a bitset scan
        when the reachability index is available)."""
        if (
            self.index is not None
            and not self.index.cyclic
            and node in self.index
        ):
            index = self.index
            return {
                index.node_of(i)
                for i in iter_bits(index.ancestors_mask(node))
            }
        return set(nx.ancestors(self.graph, node))

    def require_partial_order(self) -> None:
        if not self.is_partial_order:
            raise NotAPartialOrderError(
                f"coherent closure contains a cycle: {self.cycle}"
            )


# ---------------------------------------------------------------------------
# exact definition checks
# ---------------------------------------------------------------------------


def coherence_violations(
    spec: InterleavingSpec, relation: Iterable[tuple[S, S]]
) -> list[Violation]:
    """All violations of coherence conditions (a) and (b) by ``relation``.

    ``relation`` is taken literally (no implicit transitive closure), to
    match the paper's examples where relations are given as explicit
    transitively closed pair sets.
    """
    pairs = set(relation)
    violations: list[Violation] = []
    # (a) R contains each <=_t (all ordered pairs, not only consecutive).
    for txn in spec.transactions:
        elems = spec.description(txn).elements
        for i, a in enumerate(elems):
            for b in elems[i + 1 :]:
                if (a, b) not in pairs:
                    violations.append(Violation("missing-order", (a, b)))
    # (b) segment atomicity.
    for a, b in pairs:
        ta = spec.transaction_of(a)
        tb = spec.transaction_of(b)
        if ta == tb:
            continue
        level = spec.level(ta, tb)
        desc = spec.description(ta)
        lo, hi = desc.segment_bounds(level, a)
        pos = desc.index_of(a)
        for later in desc.elements[pos + 1 : hi + 1]:
            if (later, b) not in pairs:
                violations.append(Violation("segment-break", (a, later, b)))
    return violations


def is_coherent(
    spec: InterleavingSpec, relation: Iterable[tuple[S, S]]
) -> bool:
    """Whether ``relation`` is coherent for the specification."""
    return not coherence_violations(spec, relation)


# ---------------------------------------------------------------------------
# exact closure (pair-set fixpoint)
# ---------------------------------------------------------------------------


def coherent_closure_pairs(
    spec: InterleavingSpec, seed: Iterable[tuple[S, S]]
) -> tuple[set[tuple[S, S]], bool]:
    """The coherent closure as an explicit, transitively closed pair set.

    Returns ``(pairs, is_partial_order)``.  The fixpoint always runs to
    completion, so when the closure is cyclic the returned set contains the
    reflexive pairs ``(x, x)`` witnessing the cycles — exactly what the
    paper's R3/R4 example inspects.
    """
    succ: dict[S, set[S]] = defaultdict(set)
    pred: dict[S, set[S]] = defaultdict(set)
    worklist: deque[tuple[S, S]] = deque()

    def add_edge(u: S, v: S) -> None:
        if v in succ[u]:
            return
        sources = pred[u] | {u}
        targets = succ[v] | {v}
        for x in sources:
            fresh = targets - succ[x]
            if not fresh:
                continue
            succ[x].update(fresh)
            for y in fresh:
                pred[y].add(x)
                worklist.append((x, y))

    for u, v in spec.chain_pairs():
        add_edge(u, v)
    for u, v in seed:
        add_edge(u, v)
    while worklist:
        x, y = worklist.popleft()
        if x == y:
            continue
        tx = spec.transaction_of(x)
        ty = spec.transaction_of(y)
        if tx == ty:
            continue
        w = spec.segment_last(x, spec.level(tx, ty))
        add_edge(w, y)

    acyclic = all(x not in targets for x, targets in succ.items())
    pairs = {(x, y) for x, targets in succ.items() for y in targets}
    return pairs, acyclic


# ---------------------------------------------------------------------------
# scalable closure (incremental bitset engine)
# ---------------------------------------------------------------------------


class _Segment:
    """One ``B_t(level)``-segment tracked by the engine.

    Only the dense ids of the *first* and current *last* member are kept.
    The first member reaches every other member through the chain edges,
    so ``reach[first]`` **is** the union of all members' descendant sets
    whenever the index is exact — no per-segment union needs maintaining,
    and the rule-(b) obligation is the single bitset expression
    ``reach[first] & partners & ~reach[last]``.
    """

    __slots__ = ("txn", "level", "first", "last", "dirty")

    def __init__(self, txn, level: int, nid: int) -> None:
        self.txn = txn
        self.level = level
        self.first = nid
        self.last = nid
        self.dirty = False

    def copy(self) -> "_Segment":
        seg = _Segment(self.txn, self.level, self.first)
        seg.last = self.last
        seg.dirty = self.dirty
        return seg


class ClosureEngine:
    """Incrementally maintained coherent closure over a growing step set.

    Steps arrive per transaction in order (:meth:`add_step`, carrying the
    breakpoint level of the gap before them); seed edges arrive via
    :meth:`add_edge`.  A :class:`~repro.core.reach.ReachabilityIndex`
    keeps exact descendant bitsets under online edge insertion, and a
    dirty-segment worklist applies rule (b): for a ``B_t(i)``-segment
    with last step ``w``, every partner step reachable from the segment's
    union but not from ``w`` gets the edge ``w -> b``.  Segment queries
    are plain bitset subtractions, and only segments whose members'
    reachability actually changed are revisited.

    The engine is *monotone*: segments only extend at their open tail and
    partner masks only grow, so every previously derived edge stays a
    sound consequence as more steps arrive.  This is what lets the
    on-line closure window keep one engine alive across performed steps
    instead of re-saturating from scratch.  Once a cycle appears the
    engine is terminal (:attr:`cycle` holds a closed witness path).
    """

    __slots__ = (
        "nest",
        "k",
        "index",
        "_cids",
        "_class_masks",
        "_segs",
        "_open",
        "_node_segs",
        "_last_step",
        "_pending",
        "_blocks",
        "_seed_ids",
        "_kernel_fit",
        "cycle",
        "edges_added",
        "iterations",
        "backend_used",
    )

    def __init__(self, nest) -> None:
        self.nest = nest
        self.k = nest.k
        self.index = ReachabilityIndex()
        self._cids: dict = {}
        self._class_masks: list[dict[int, int]] = [
            {} for _ in range(self.k)
        ]
        self._segs: list[_Segment] = []
        self._open: dict = {}
        self._node_segs: list[tuple[int, ...]] = []
        self._last_step: dict = {}
        self._pending: deque[int] = deque()
        # Bookkeeping for the vectorized kernel: contiguous dense-id
        # block per batch-loaded transaction, the silent seed edges, and
        # whether the engine still qualifies for the packed layout
        # (step-wise growth and pre-bootstrap propagation do not).
        self._blocks: list[tuple] = []
        self._seed_ids: list[tuple[int, int]] = []
        self._kernel_fit = True
        self.cycle: list | None = None
        self.edges_added = 0
        self.iterations = 0
        self.backend_used = "python"

    @property
    def cyclic(self) -> bool:
        return self.cycle is not None

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------

    def register(self, step: S) -> None:
        """Pre-intern ``step`` so dense ids follow a caller-chosen order
        (ids otherwise follow :meth:`add_step` arrival order)."""
        self._kernel_fit = False
        nid = self.index.add_node(step)
        while len(self._node_segs) <= nid:
            self._node_segs.append(())

    def add_step(
        self,
        txn,
        step: S,
        cut_level: int | None = None,
        defer: bool = False,
    ) -> None:
        """Append ``step`` to ``txn``'s order.

        ``cut_level`` is the minimum breakpoint level declared for the
        gap *before* this step (``None`` for the first step or an uncut
        gap): the step starts a new segment at every tracked level
        ``>= cut_level`` and extends the open segment elsewhere.  The
        same-transaction chain edge is added automatically.

        With ``defer=True`` the chain edge goes in silently (adjacency
        only); the caller must finish loading with :meth:`bootstrap`.
        """
        self._kernel_fit = False
        nid = self.index.add_node(step)
        while len(self._node_segs) <= nid:
            self._node_segs.append(())
        bit = 1 << nid
        cids = self._cids.get(txn)
        if cids is None:
            nest = self.nest
            cids = tuple(
                nest.class_id(level, txn) for level in range(1, self.k + 1)
            )
            self._cids[txn] = cids
        for level0, cid in enumerate(cids):
            masks = self._class_masks[level0]
            masks[cid] = masks.get(cid, 0) | bit
        segs = self._segs
        open_list = self._open.get(txn)
        node_segs = []
        if open_list is None:
            open_list = []
            for level0 in range(self.k - 1):
                si = len(segs)
                segs.append(_Segment(txn, level0 + 1, nid))
                open_list.append(si)
                node_segs.append(si)
            self._open[txn] = open_list
        else:
            for level0 in range(self.k - 1):
                if cut_level is not None and cut_level <= level0 + 1:
                    si = len(segs)
                    segs.append(_Segment(txn, level0 + 1, nid))
                    open_list[level0] = si
                    node_segs.append(si)
                else:
                    si = open_list[level0]
                    seg = segs[si]
                    seg.last = nid
                    # The new last step reaches less than its
                    # predecessors: foreign steps already ordered after
                    # the segment may now be missing from reach[last].
                    if not defer and not seg.dirty:
                        seg.dirty = True
                        self._pending.append(si)
        self._node_segs[nid] = tuple(node_segs)
        prev = self._last_step.get(txn)
        self._last_step[txn] = step
        if prev is not None:
            if defer:
                self.index.add_edge_silent_ids(self.index.id_of(prev), nid)
            else:
                self.add_edge(prev, step)

    def load_transaction(
        self,
        txn,
        steps: Sequence[S],
        cuts: Sequence[int | None],
    ) -> None:
        """Batch-append a whole (fresh) transaction in one call, with
        deferred chain edges; finish loading with :meth:`bootstrap`.

        ``cuts[g]`` is the minimum breakpoint level declared for the gap
        after step ``g`` (``None`` for an uncut gap) — the same meaning
        ``cut_level`` has on :meth:`add_step` for the step following the
        gap.  Equivalent to one deferred :meth:`add_step` per step, but
        much cheaper: class masks get one union per level, segments are
        built straight from the cut boundaries, and chain edges go
        directly into the adjacency.
        """
        if not steps:
            return
        index = self.index
        add_node = index.add_node
        base = len(index)
        nids = [add_node(step) for step in steps]
        if nids[0] == base and len(index) == base + len(steps):
            # All steps fresh: one contiguous dense-id block, the shape
            # the vectorized kernel packs.
            self._blocks.append((txn, nids[0], nids[-1]))
        else:
            self._kernel_fit = False
        node_segs = self._node_segs
        while len(node_segs) < len(index):
            node_segs.append(())
        own = 0
        for nid in nids:
            own |= 1 << nid
        cids = self._cids.get(txn)
        if cids is None:
            nest = self.nest
            cids = tuple(
                nest.class_id(level, txn) for level in range(1, self.k + 1)
            )
            self._cids[txn] = cids
        for level0, cid in enumerate(cids):
            masks = self._class_masks[level0]
            masks[cid] = masks.get(cid, 0) | own
        adj = index._adj
        radj = index._radj
        prev = nids[0]
        for nid in nids[1:]:
            adj[prev] |= 1 << nid
            radj[nid] |= 1 << prev
            prev = nid
        index.edges += len(nids) - 1
        segs = self._segs
        created: dict[int, list[int]] = {}
        open_list: list[int] = []
        for level0 in range(self.k - 1):
            level = level0 + 1
            for start, end in segment_spans(len(nids), cuts, level):
                si = len(segs)
                seg = _Segment(txn, level, nids[start])
                seg.last = nids[end]
                segs.append(seg)
                created.setdefault(nids[start], []).append(si)
            open_list.append(si)
        for nid, sis in created.items():
            node_segs[nid] = tuple(sis)
        self._open[txn] = open_list
        self._last_step[txn] = steps[-1]

    def add_edge(self, u: S, v: S) -> bool:
        """Insert a seed edge; ``False`` when it closes a cycle (the
        witness step path lands in :attr:`cycle`)."""
        if self.cycle is not None:
            return False
        self._kernel_fit = False
        ok, affected = self.index.add_edge(u, v)
        if not ok:
            nodes = self.index.nodes
            self.cycle = [nodes[i] for i in self.index.cycle_ids or ()]
            return False
        if affected:
            self._mark(affected)
        return True

    def add_edge_silent(self, u: S, v: S) -> None:
        """Insert a seed edge without propagation (batch loading; pair
        with :meth:`bootstrap`)."""
        index = self.index
        iu, iv = index.id_of(u), index.id_of(v)
        before = index.edges
        index.add_edge_silent_ids(iu, iv)
        if index.edges != before:
            self._seed_ids.append((iu, iv))

    def bootstrap(self, materialize: str = "eager") -> bool:
        """Finish a deferred batch load.  ``False`` on a cycle.

        When the vectorized backend is selected (see
        :func:`repro.core.closure_kernel.should_try`) and the engine was
        grown purely through :meth:`load_transaction` +
        :meth:`add_edge_silent`, the whole fixpoint runs as packed
        numpy matrix operations and this method only writes the result
        back; :attr:`backend_used` records which path ran.  The kernel
        declines cyclic inputs, so cycle witnesses always come from the
        Python path below and are identical across backends.

        ``materialize="lazy"`` defers the index writeback until first
        touched — only sound for one-shot results (the checker's accept
        verdict never reads the bitsets); keep the default for engines
        that stay live.

        Saturation here is *round-based*, not worklist-based: each round
        scans every segment against the current descendant bitsets, adds
        all missing rule-(b) edges silently, then rebuilds reachability
        with one reverse-topological sweep (O(n + m) big-int operations).
        Per-edge ancestor propagation — the right trade-off for the
        online window, where a call adds one step — is quadratic when
        thousands of edges land at once; batching them against a
        per-round snapshot costs a handful of sweeps instead.  On
        success the engine is exact and saturated, so the online
        incremental path can take over from it seamlessly."""
        if self.cycle is not None:
            return False
        if self._kernel_fit and closure_kernel.should_try(len(self.index)):
            outcome = closure_kernel.bootstrap_engine(
                self, eager=materialize != "lazy"
            )
            if outcome:
                self.backend_used = "numpy"
                return True
        self.backend_used = "python"
        index = self.index
        reach = index._reach
        segs = self._segs
        node_segs = self._node_segs
        self._pending.clear()
        if not index.recompute():
            nodes = index.nodes
            self.cycle = [nodes[i] for i in index.cycle_ids or ()]
            return False
        adj = index._adj
        radj = index._radj
        changed = index.last_changed
        while True:
            self.iterations += 1
            # Only segments whose first member's reach changed can owe a
            # new edge; one-member segments never do (first == last).
            scan: list[int] = []
            for nid in iter_bits(changed):
                for si in node_segs[nid]:
                    seg = segs[si]
                    if seg.first != seg.last and not seg.dirty:
                        seg.dirty = True
                        scan.append(si)
            # Process most-downstream segments first and fold the bits
            # their new edges make reachable into a per-node ``boost``:
            # upstream segments scanned later then subtract a fresher
            # picture, so far fewer redundant edges (and rounds) are
            # generated than against the round-start snapshot alone.
            topo = index._topo or ()
            rank = [0] * len(reach)
            for pos, nid in enumerate(topo):
                rank[nid] = pos
            scan.sort(key=lambda si: rank[segs[si].last], reverse=True)
            boost: dict[int, int] = {}
            get_boost = boost.get
            new_edges: list[tuple[int, int]] = []
            for si in scan:
                seg = segs[si]
                seg.dirty = False
                partner = self._partners(seg.txn, seg.level)
                if not partner:
                    continue
                last = seg.last
                missing = (
                    (reach[seg.first] | get_boost(seg.first, 0))
                    & partner
                    & ~(reach[last] | get_boost(last, 0))
                )
                if not missing:
                    continue
                bit_last = 1 << last
                acc = 0
                while missing:
                    low = missing & -missing
                    target = low.bit_length() - 1
                    if not adj[last] & low:
                        adj[last] |= low
                        radj[target] |= bit_last
                        index.edges += 1
                        new_edges.append((last, target))
                        self.edges_added += 1
                    # One edge covers everything reachable from its
                    # target: skip that, keeping the generating graph
                    # sparse.  (reach[target] holds target's own bit, so
                    # this also clears ``low`` itself.)
                    covered = reach[target] | get_boost(target, 0)
                    acc |= covered
                    missing &= ~covered
                if acc:
                    boost[last] = get_boost(last, 0) | acc
            if not new_edges:
                return True
            # Dense rounds: one full reverse-topological sweep is cheaper
            # than pushing each edge's delta up the predecessor graph.
            if len(new_edges) >= len(index):
                if index.recompute():
                    changed = index.last_changed
                    continue
                repaired = None
            else:
                repaired = index.refresh(new_edges)
            if repaired is None:
                nodes = index.nodes
                self.cycle = [nodes[i] for i in index.cycle_ids or ()]
                return False
            changed = repaired

    def _mark(self, affected: list[int]) -> None:
        """Queue the segments whose rule-(b) obligation may have grown:
        those whose *first* member's descendant set just changed.  (A
        one-member segment never owes an edge — its first is its last.)
        """
        segs = self._segs
        node_segs = self._node_segs
        pending = self._pending
        for nid in affected:
            for si in node_segs[nid]:
                seg = segs[si]
                if seg.first != seg.last and not seg.dirty:
                    seg.dirty = True
                    pending.append(si)

    def _partners(self, txn, level: int) -> int:
        """Bitmask of steps owned by transactions at exactly ``level``
        from ``txn`` — the only filter rule (b) needs."""
        cids = self._cids[txn]
        same = self._class_masks[level - 1].get(cids[level - 1], 0)
        if level < self.k:
            closer = self._class_masks[level].get(cids[level], 0)
        else:
            closer = 0
        return same & ~closer

    # ------------------------------------------------------------------
    # saturation
    # ------------------------------------------------------------------

    def saturate(self) -> bool:
        """Drain the dirty-segment worklist; ``False`` on a cycle.

        Terminates unconditionally: a segment is re-queued only when some
        member's descendant set grew, and bitsets grow at most ``n``
        times each.
        """
        if self.cycle is not None:
            return False
        index = self.index
        reach = index._reach
        pending = self._pending
        segs = self._segs
        while pending:
            si = pending.popleft()
            seg = segs[si]
            seg.dirty = False
            self.iterations += 1
            partner = self._partners(seg.txn, seg.level)
            if not partner:
                continue
            missing = reach[seg.first] & partner & ~reach[seg.last]
            while missing:
                target = (missing & -missing).bit_length() - 1
                ok, affected = index.add_edge_ids(seg.last, target)
                if not ok:
                    nodes = index.nodes
                    self.cycle = [nodes[i] for i in index.cycle_ids or ()]
                    pending.clear()
                    return False
                self.edges_added += 1
                if affected:
                    self._mark(affected)
                missing = reach[seg.first] & partner & ~reach[seg.last]
        return True

    # ------------------------------------------------------------------
    # queries / copying
    # ------------------------------------------------------------------

    def ancestors(self, step: S) -> set:
        """All steps that precede ``step`` in the current closure."""
        mask = self.index.ancestors_mask(step)
        nodes = self.index.nodes
        return {nodes[i] for i in iter_bits(mask)}

    def last_step_of(self, txn) -> S | None:
        return self._last_step.get(txn)

    def result(self) -> ClosureResult:
        """The current state as a :class:`ClosureResult` (shares the live
        index; see the note there)."""
        return ClosureResult(
            self.cycle is None,
            cycle=self.cycle,
            iterations=self.iterations,
            edges_added=self.edges_added,
            index=self.index,
            backend=self.backend_used,
        )

    def clone(self) -> "ClosureEngine":
        """An independent copy for what-if probing — O(n) pointer work,
        since bitsets are immutable ints."""
        other = ClosureEngine.__new__(ClosureEngine)
        other.nest = self.nest
        other.k = self.k
        other.index = self.index.clone()
        other._cids = dict(self._cids)
        other._class_masks = [dict(m) for m in self._class_masks]
        other._segs = [seg.copy() for seg in self._segs]
        other._open = {t: list(v) for t, v in self._open.items()}
        other._node_segs = list(self._node_segs)
        other._last_step = dict(self._last_step)
        other._pending = deque(self._pending)
        other._blocks = list(self._blocks)
        other._seed_ids = list(self._seed_ids)
        other._kernel_fit = self._kernel_fit
        other.cycle = list(self.cycle) if self.cycle else None
        other.edges_added = self.edges_added
        other.iterations = self.iterations
        other.backend_used = self.backend_used
        return other


def coherent_closure(
    spec: InterleavingSpec,
    seed: Iterable[tuple[S, S]],
    max_iterations: int = 10_000,
) -> ClosureResult:
    """Compute the coherent closure of ``seed`` over ``spec``.

    Steps are interned to dense ids (``repr``-sorted transactions, each
    in chain order — deterministic witnesses), chain and seed edges
    stream through the incremental reachability index, and saturation
    applies rule
    (b): for every ``B_t(i)``-segment with last step ``w`` and every
    partner step ``b`` reachable from some step of the segment but not
    from ``w``, add ``w -> b``.  Reachability of the final generating
    graph is exactly the transitive + rule-(b) closure.

    Stops immediately (with a witness) once a cycle appears — by Theorem
    2 the seed execution is then not correctable, and further saturation
    cannot remove a cycle.  ``max_iterations`` is retained for API
    compatibility; the worklist engine terminates unconditionally.
    """
    del max_iterations
    engine = ClosureEngine(spec.nest)
    for txn in sorted(spec.transactions, key=repr):
        desc = spec.description(txn)
        elems = desc.elements
        engine.load_transaction(
            txn,
            elems,
            [desc.min_cut_level(g) for g in range(len(elems) - 1)],
        )
    for u, v in seed:
        engine.add_edge_silent(u, v)
    engine.bootstrap(materialize="lazy")
    return engine.result()


# ---------------------------------------------------------------------------
# total orders (multilevel-atomicity checking)
# ---------------------------------------------------------------------------


def total_order_violations(
    spec: InterleavingSpec, sequence: Sequence[S]
) -> list[Violation]:
    """Coherence violations of a *total* order given as a step sequence.

    A total order is coherent iff (a) it orders each transaction's steps
    consistently with ``<=_t`` and (b) no step of ``t'`` falls strictly
    inside the execution span of a ``B_t(level(t, t'))``-segment.  The
    check runs in ``O(n * k * log n)`` using per-(class, level) sorted
    position arrays.
    """
    position = {step: i for i, step in enumerate(sequence)}
    if len(position) != len(sequence):
        raise NotAPartialOrderError("total order repeats a step")
    violations: list[Violation] = []
    # (a) subsequence check per transaction.
    for txn in spec.transactions:
        elems = spec.description(txn).elements
        prev = None
        for step in elems:
            if step not in position:
                raise NotAPartialOrderError(
                    f"total order is missing step {step!r} of {txn!r}"
                )
            if prev is not None and position[prev] > position[step]:
                violations.append(Violation("missing-order", (prev, step)))
            prev = step
    if len(position) != sum(
        len(spec.description(t).elements) for t in spec.transactions
    ):
        raise NotAPartialOrderError("total order contains foreign steps")

    # Per-level, per-class sorted position arrays over *transaction class*
    # membership: positions of all steps owned by the class's transactions.
    nest = spec.nest
    class_positions: list[dict[int, list[int]]] = []
    for level in range(1, nest.k + 1):
        per_class: dict[int, list[int]] = defaultdict(list)
        for txn in spec.transactions:
            cid = nest.class_id(level, txn)
            per_class[cid].extend(
                position[s] for s in spec.description(txn).elements
            )
        class_positions.append({c: sorted(p) for c, p in per_class.items()})

    import bisect

    def count_between(level: int, cid: int, lo: int, hi: int) -> int:
        arr = class_positions[level - 1].get(cid, [])
        return bisect.bisect_left(arr, hi) - bisect.bisect_right(arr, lo)

    # (b) no partner step strictly inside a segment span.
    for txn in spec.transactions:
        desc = spec.description(txn)
        for level in range(1, spec.k):
            cid_same = nest.class_id(level, txn)
            cid_closer = (
                nest.class_id(level + 1, txn) if level + 1 <= nest.k else None
            )
            for segment in desc.segments(level):
                if len(segment) < 2:
                    continue
                lo = position[segment[0]]
                hi = position[segment[-1]]
                inside = count_between(level, cid_same, lo, hi)
                if cid_closer is not None:
                    inside -= count_between(level + 1, cid_closer, lo, hi)
                # steps of txn itself inside the span are fine; they are
                # counted in the *closer* class at level + 1 already (txn is
                # pi(level+1)-equivalent to itself) so no correction needed.
                if inside > 0:
                    offender = _find_intruder(
                        spec, sequence, txn, level, lo, hi
                    )
                    violations.append(
                        Violation("segment-break", (segment[0], offender, segment[-1]))
                    )
    return violations


def _find_intruder(
    spec: InterleavingSpec,
    sequence: Sequence[S],
    txn,
    level: int,
    lo: int,
    hi: int,
):
    """Locate one partner step strictly inside ``(lo, hi)`` (slow path,
    only taken when a violation is being reported)."""
    for pos in range(lo + 1, hi):
        step = sequence[pos]
        other = spec.transaction_of(step)
        if other != txn and spec.level(txn, other) == level:
            return step
    return None


def is_coherent_total_order(
    spec: InterleavingSpec, sequence: Sequence[S]
) -> bool:
    """Whether the given step sequence is a coherent total order — i.e.
    whether the execution it describes is multilevel atomic."""
    return not total_order_violations(spec, sequence)
