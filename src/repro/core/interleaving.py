"""k-level interleaving specifications (Section 4.2).

An interleaving specification for a set ``T`` of transactions is a family
of triples ``(X_t, <=_t, B_t)``: for each transaction a disjoint totally
ordered set of steps and a k-level breakpoint description over them.
Together with a k-nest ``pi`` over ``T`` it determines which relations on
``U X_t`` are *coherent* (see :mod:`repro.core.coherence`).

The class below bundles the nest and the triples and pre-computes the
lookups that every coherence query needs: which transaction owns a step,
the step's position in its transaction, and ``segment_last`` at each
relevant level.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator, Mapping
from typing import TypeVar

from repro.core.nests import KNest
from repro.core.segmentation import BreakpointDescription
from repro.errors import SpecificationError

S = TypeVar("S", bound=Hashable)
T = TypeVar("T", bound=Hashable)

__all__ = ["InterleavingSpec"]


class InterleavingSpec:
    """A k-nest over transactions plus per-transaction step orders and
    breakpoint descriptions.

    Parameters
    ----------
    nest:
        The k-nest ``pi`` over transaction identifiers.
    descriptions:
        For each transaction in ``nest.items``, its breakpoint
        description (which carries the transaction's totally ordered step
        set).  Step sets must be pairwise disjoint and every description
        must have the same ``k`` as the nest.
    """

    __slots__ = ("_nest", "_descriptions", "_owner", "_position")

    def __init__(
        self,
        nest: KNest,
        descriptions: Mapping[T, BreakpointDescription],
    ) -> None:
        if set(descriptions) != set(nest.items):
            raise SpecificationError(
                "descriptions must cover exactly the transactions of the nest"
            )
        self._nest = nest
        self._descriptions = dict(descriptions)
        self._owner: dict[S, T] = {}
        self._position: dict[S, int] = {}
        for txn, desc in self._descriptions.items():
            if desc.k != nest.k:
                raise SpecificationError(
                    f"description of {txn!r} has k={desc.k}, nest has k={nest.k}"
                )
            for pos, step in enumerate(desc.elements):
                if step in self._owner:
                    raise SpecificationError(
                        f"step {step!r} belongs to both {self._owner[step]!r} "
                        f"and {txn!r}; step sets must be disjoint"
                    )
                self._owner[step] = txn
                self._position[step] = pos

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def nest(self) -> KNest:
        return self._nest

    @property
    def k(self) -> int:
        return self._nest.k

    @property
    def transactions(self) -> frozenset:
        return self._nest.items

    @property
    def steps(self) -> frozenset:
        """All steps ``U X_t``."""
        return frozenset(self._owner)

    def description(self, txn: T) -> BreakpointDescription:
        try:
            return self._descriptions[txn]
        except KeyError:
            raise SpecificationError(f"unknown transaction {txn!r}") from None

    def transaction_of(self, step: S) -> T:
        try:
            return self._owner[step]
        except KeyError:
            raise SpecificationError(f"unknown step {step!r}") from None

    def position_of(self, step: S) -> int:
        """0-based position of ``step`` within its transaction's order."""
        return self._position[step]

    def level(self, t: T, u: T) -> int:
        return self._nest.level(t, u)

    def precedes_in_transaction(self, a: S, b: S) -> bool:
        """Whether ``a <_t b`` for a common transaction ``t``."""
        return (
            self._owner[a] == self._owner[b]
            and self._position[a] < self._position[b]
        )

    def segment_last(self, step: S, level: int) -> S:
        """Last step of ``step``'s level-``level`` segment in its own
        transaction (the quantity rule (b) of coherence propagates)."""
        return self._descriptions[self._owner[step]].segment_last(level, step)

    def chain_pairs(self) -> Iterator[tuple[S, S]]:
        """All consecutive pairs ``(x_i, x_{i+1})`` of every ``<=_t``.

        The transitive closure of these is exactly ``U <=_t``, the seed
        that coherence condition (a) requires every coherent relation to
        contain.
        """
        for desc in self._descriptions.values():
            elems = desc.elements
            for i in range(len(elems) - 1):
                yield elems[i], elems[i + 1]

    def restrict(self, transactions) -> "InterleavingSpec":
        """The specification induced on a subset of the transactions."""
        keep = set(transactions)
        return InterleavingSpec(
            self._nest.restrict(keep),
            {t: d for t, d in self._descriptions.items() if t in keep},
        )

    def truncate(self, k: int) -> "InterleavingSpec":
        """Coarsen nest and all descriptions to depth ``k`` (ablation E6)."""
        return InterleavingSpec(
            self._nest.truncate(k),
            {t: d.truncate(k) for t, d in self._descriptions.items()},
        )

    def __repr__(self) -> str:
        return (
            f"InterleavingSpec(k={self.k}, transactions="
            f"{len(self._descriptions)}, steps={len(self._owner)})"
        )
