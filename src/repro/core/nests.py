"""k-nests (Section 4.2 of the paper).

A *k-nest* ``pi`` for a set ``X`` assigns an equivalence relation ``pi(i)``
to each level ``i`` in ``1..k`` such that

* ``pi(1)`` has exactly one equivalence class (everything is related),
* ``pi(k)`` consists of singleton classes (nothing is related but itself),
* each ``pi(i)`` refines its predecessor ``pi(i-1)``.

For ``x, x' in X``, ``level(x, x')`` is the largest ``i`` with
``(x, x') in pi(i)``; pairs with higher level are more closely related.

In this library the elements of ``X`` are usually transaction identifiers,
and the nest encodes the hierarchical structure of an organisation (families
of bank customers, teams of CAD experts, ...).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TypeVar

from repro.errors import SpecificationError

T = TypeVar("T", bound=Hashable)

__all__ = ["KNest", "PathNest"]


class KNest:
    """An immutable k-nest over a finite set of hashable items.

    Parameters
    ----------
    partitions:
        ``partitions[i - 1]`` is the partition for level ``i`` (1-based
        levels, as in the paper), given as an iterable of iterables of
        items.  Level 1 must be a single class, level ``k`` must be all
        singletons, and each level must refine the previous one.

    Examples
    --------
    The paper's banking 4-nest (Section 4.2) for three customer transfers
    ``t1, t2, t3`` (``t1`` and ``t2`` from a common family) and one bank
    audit ``a``::

        >>> nest = KNest([
        ...     [["t1", "t2", "t3", "a"]],
        ...     [["t1", "t2", "t3"], ["a"]],
        ...     [["t1", "t2"], ["t3"], ["a"]],
        ...     [["t1"], ["t2"], ["t3"], ["a"]],
        ... ])
        >>> nest.level("t1", "t2")
        3
        >>> nest.level("t1", "t3")
        2
        >>> nest.level("t1", "a")
        1
        >>> nest.level("a", "a")
        4
    """

    __slots__ = ("_k", "_items", "_class_ids", "_classes")

    def __init__(self, partitions: Sequence[Iterable[Iterable[T]]]) -> None:
        if not partitions:
            raise SpecificationError("a k-nest needs at least one level")
        self._k = len(partitions)
        # Per level: item -> class id, and tuple of frozenset classes.
        self._class_ids: list[dict[T, int]] = []
        self._classes: list[tuple[frozenset[T], ...]] = []
        for level0, raw_classes in enumerate(partitions):
            classes = tuple(frozenset(c) for c in raw_classes)
            ids: dict[T, int] = {}
            for cid, cls in enumerate(classes):
                if not cls:
                    raise SpecificationError(
                        f"level {level0 + 1} contains an empty class"
                    )
                for item in cls:
                    if item in ids:
                        raise SpecificationError(
                            f"item {item!r} appears in two classes of level "
                            f"{level0 + 1}"
                        )
                    ids[item] = cid
            self._class_ids.append(ids)
            self._classes.append(classes)
        self._items = frozenset(self._class_ids[0])
        self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_paths(cls, paths: Mapping[T, Sequence[Hashable]]) -> "KNest":
        """Build a k-nest from hierarchy *paths*.

        Each item maps to a sequence of ``k - 2`` group labels; two items
        are ``pi(i)``-equivalent exactly when their paths agree on the
        first ``i - 1`` labels.  Level 1 relates everything and level ``k``
        is automatically the singleton partition, so all paths must have
        the same length and ``k = len(path) + 2``.

        This is the natural encoding for organisational hierarchies: the
        banking nest uses paths like ``("customer", "family-1")`` for
        transfers and ``("audit:a1", "audit:a1")`` for audits (unique
        labels put the audit in a singleton class from level 2 on).
        """
        if not paths:
            raise SpecificationError("from_paths needs at least one item")
        lengths = {len(p) for p in paths.values()}
        if len(lengths) != 1:
            raise SpecificationError(
                f"all paths must have equal length, got lengths {sorted(lengths)}"
            )
        depth = lengths.pop()
        k = depth + 2
        partitions: list[list[list[T]]] = []
        for level in range(1, k + 1):
            groups: dict[tuple, list[T]] = {}
            for item, path in paths.items():
                if level == k:
                    key = ("item", item)
                else:
                    key = ("prefix", tuple(path[: level - 1]))
                groups.setdefault(key, []).append(item)
            partitions.append(list(groups.values()))
        return cls(partitions)

    @classmethod
    def flat(cls, items: Iterable[T]) -> "KNest":
        """The 2-nest: everything related at level 1, nothing at level 2.

        Under this nest, multilevel atomicity degenerates to classical
        serializability (Section 4.3's first example).
        """
        items = list(items)
        return cls([[items], [[item] for item in items]])

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of levels."""
        return self._k

    @property
    def items(self) -> frozenset:
        """The underlying set ``X``."""
        return self._items

    def level(self, x: T, y: T) -> int:
        """``level(x, y)``: the largest ``i`` with ``(x, y) in pi(i)``."""
        self._require(x)
        self._require(y)
        if x == y:
            return self._k
        # Walk down from the finest level; classes only merge going up.
        for i in range(self._k, 0, -1):
            ids = self._class_ids[i - 1]
            if ids[x] == ids[y]:
                return i
        raise SpecificationError(
            f"{x!r} and {y!r} unrelated even at level 1; not a valid k-nest"
        )

    def classes(self, i: int) -> tuple[frozenset, ...]:
        """The equivalence classes of ``pi(i)``."""
        self._require_level(i)
        return self._classes[i - 1]

    def class_of(self, i: int, x: T) -> frozenset:
        """The ``pi(i)``-class containing ``x``."""
        self._require_level(i)
        self._require(x)
        return self._classes[i - 1][self._class_ids[i - 1][x]]

    def class_id(self, i: int, x: T) -> int:
        """A canonical integer id of the ``pi(i)``-class containing ``x``."""
        self._require_level(i)
        self._require(x)
        return self._class_ids[i - 1][x]

    def same_class(self, i: int, x: T, y: T) -> bool:
        """Whether ``(x, y) in pi(i)``."""
        self._require_level(i)
        self._require(x)
        self._require(y)
        ids = self._class_ids[i - 1]
        return ids[x] == ids[y]

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------

    def restrict(self, items: Iterable[T]) -> "KNest":
        """The induced k-nest on a subset of the items.

        Used when deriving the interleaving specification for a particular
        execution, which mentions only the transactions that actually took
        steps (Section 4.3).
        """
        keep = set(items)
        missing = keep - self._items
        if missing:
            raise SpecificationError(f"unknown items: {sorted(map(repr, missing))}")
        if not keep:
            raise SpecificationError("cannot restrict a nest to the empty set")
        partitions = []
        for classes in self._classes:
            partitions.append(
                [cls & keep for cls in classes if cls & keep]
            )
        return KNest(partitions)

    def truncate(self, k: int) -> "KNest":
        """Coarsen to a ``k``-nest by keeping levels ``1..k-1`` and forcing
        level ``k`` to singletons.

        This is the ablation used by experiment E6: truncating the CAD
        5-nest to depth 2 yields plain serializability; each extra level
        re-admits one tier of interleaving.
        """
        if not 2 <= k <= self._k:
            raise SpecificationError(
                f"truncation depth must be in [2, {self._k}], got {k}"
            )
        partitions: list[list[list[T]]] = [
            [list(cls) for cls in self._classes[i]] for i in range(k - 1)
        ]
        partitions.append([[item] for item in self._items])
        return KNest(partitions)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _require(self, x: T) -> None:
        if x not in self._items:
            raise SpecificationError(f"unknown item: {x!r}")

    def _require_level(self, i: int) -> None:
        if not 1 <= i <= self._k:
            raise SpecificationError(f"level must be in [1, {self._k}], got {i}")

    def _validate(self) -> None:
        if len(self._classes[0]) != 1:
            raise SpecificationError("pi(1) must consist of exactly one class")
        if any(len(cls) != 1 for cls in self._classes[-1]):
            raise SpecificationError("pi(k) must consist of singleton classes")
        for i in range(1, self._k):
            if set(self._class_ids[i]) != self._items:
                raise SpecificationError(
                    f"level {i + 1} does not partition the same item set as level 1"
                )
            # pi(i+1) refines pi(i): each finer class sits inside one coarser
            # class.
            coarse = self._class_ids[i - 1]
            for cls in self._classes[i]:
                owners = {coarse[item] for item in cls}
                if len(owners) != 1:
                    raise SpecificationError(
                        f"level {i + 1} does not refine level {i}: class "
                        f"{sorted(map(repr, cls))} straddles two level-{i} classes"
                    )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KNest):
            return NotImplemented
        return self._k == other._k and all(
            set(a) == set(b) for a, b in zip(self._classes, other._classes)
        )

    def __hash__(self) -> int:
        return hash((self._k, tuple(frozenset(c) for c in self._classes[-2])))

    def __repr__(self) -> str:
        return f"KNest(k={self._k}, items={len(self._items)})"


class PathNest:
    """A growable k-nest over fixed-depth hierarchy paths.

    :class:`KNest` is immutable — the right shape for the paper's closed
    experiments, but an open system admitting transactions one at a time
    would pay a full ``from_paths`` rebuild (linear in every item ever
    admitted) per arrival.  ``PathNest`` keeps the *path* encoding as its
    primary representation: adding an item is O(depth) prefix interning,
    ``level``/``class_id`` queries are O(depth) with no per-item scans,
    and the class structure agrees with ``KNest.from_paths`` over the
    same mapping (property-tested against that oracle).

    Levels mean exactly what ``from_paths`` makes them mean: two distinct
    items are ``pi(i)``-equivalent iff their paths agree on the first
    ``i - 1`` labels, level 1 relates everything, and level
    ``k = depth + 2`` is the singleton partition.
    """

    __slots__ = ("_depth", "_k", "_paths", "_prefix_ids", "_item_ids")

    def __init__(self, depth: int) -> None:
        if depth < 0:
            raise SpecificationError("path depth must be non-negative")
        self._depth = depth
        self._k = depth + 2
        self._paths: dict[T, tuple[Hashable, ...]] = {}
        # _prefix_ids[j] interns length-(j + 1) prefixes for level j + 2.
        self._prefix_ids: list[dict[tuple, int]] = [
            {} for _ in range(depth)
        ]
        self._item_ids: dict[T, int] = {}

    @classmethod
    def from_paths(cls, paths: Mapping[T, Sequence[Hashable]]) -> "PathNest":
        """Seed a growable nest from an initial path mapping (the same
        input shape as :meth:`KNest.from_paths`)."""
        if not paths:
            raise SpecificationError("from_paths needs at least one item")
        lengths = {len(p) for p in paths.values()}
        if len(lengths) != 1:
            raise SpecificationError(
                f"all paths must have equal length, got lengths {sorted(lengths)}"
            )
        nest = cls(lengths.pop())
        for item, path in paths.items():
            nest.add(item, path)
        return nest

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------

    def add(self, item: T, path: Sequence[Hashable]) -> None:
        """Admit ``item`` at ``path``.  Re-adding with the same path is a
        no-op; a conflicting path is an error (an item cannot move)."""
        path = tuple(path)
        if len(path) != self._depth:
            raise SpecificationError(
                f"path for {item!r} has length {len(path)}, nest depth is "
                f"{self._depth}"
            )
        known = self._paths.get(item)
        if known is not None:
            if known != path:
                raise SpecificationError(
                    f"item {item!r} already placed at {known!r}"
                )
            return
        self._paths[item] = path
        self._item_ids[item] = len(self._item_ids)
        for j in range(self._depth):
            prefix = path[: j + 1]
            ids = self._prefix_ids[j]
            if prefix not in ids:
                ids[prefix] = len(ids)

    # ------------------------------------------------------------------
    # queries (the KNest surface the engine path consumes)
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        return self._k

    @property
    def items(self) -> frozenset:
        return frozenset(self._paths)

    def path_of(self, x: T) -> tuple[Hashable, ...]:
        self._require(x)
        return self._paths[x]

    def level(self, x: T, y: T) -> int:
        """O(depth): ``min(lcp(paths) + 1, k - 1)`` for distinct items,
        ``k`` on the diagonal — the ``from_paths`` relation."""
        self._require(x)
        self._require(y)
        if x == y:
            return self._k
        px, py = self._paths[x], self._paths[y]
        agree = 0
        for a, b in zip(px, py):
            if a != b:
                break
            agree += 1
        return agree + 1

    def class_id(self, i: int, x: T) -> int:
        self._require_level(i)
        self._require(x)
        if i == 1:
            return 0
        if i == self._k:
            return self._item_ids[x]
        return self._prefix_ids[i - 2][self._paths[x][: i - 1]]

    def same_class(self, i: int, x: T, y: T) -> bool:
        self._require_level(i)
        self._require(x)
        self._require(y)
        if i == 1:
            return True
        if i == self._k:
            return x == y
        return self._paths[x][: i - 1] == self._paths[y][: i - 1]

    def class_of(self, i: int, x: T) -> frozenset:
        """O(n) scan — fine for inspection, not for the hot path."""
        self._require_level(i)
        self._require(x)
        if i == self._k:
            return frozenset((x,))
        prefix = self._paths[x][: i - 1]
        return frozenset(
            item
            for item, path in self._paths.items()
            if path[: i - 1] == prefix
        )

    def restrict(self, items: Iterable[T]) -> KNest:
        """Materialise the induced (small, immutable) nest on a subset.

        The closure window calls this with only its live-window
        transactions, so the open system's per-check cost stays bounded
        by the window size, never by total admissions.
        """
        keep = set(items)
        missing = keep - set(self._paths)
        if missing:
            raise SpecificationError(
                f"unknown items: {sorted(map(repr, missing))}"
            )
        if not keep:
            raise SpecificationError("cannot restrict a nest to the empty set")
        return KNest.from_paths({item: self._paths[item] for item in keep})

    def to_knest(self) -> KNest:
        """The equivalent immutable nest over everything admitted so far."""
        return KNest.from_paths(dict(self._paths))

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _require(self, x: T) -> None:
        if x not in self._paths:
            raise SpecificationError(f"unknown item: {x!r}")

    def _require_level(self, i: int) -> None:
        if not 1 <= i <= self._k:
            raise SpecificationError(f"level must be in [1, {self._k}], got {i}")

    def __len__(self) -> int:
        return len(self._paths)

    def __contains__(self, item: object) -> bool:
        return item in self._paths

    def __repr__(self) -> str:
        return f"PathNest(k={self._k}, items={len(self._paths)})"
