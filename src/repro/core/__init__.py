"""The paper's primary contribution: multilevel atomicity (Sections 4-5).

Public surface:

* :class:`~repro.core.nests.KNest` — nested transaction classes.
* :class:`~repro.core.segmentation.BreakpointDescription` — per-execution
  breakpoints.
* :class:`~repro.core.interleaving.InterleavingSpec` — the bundle Theorem 2
  operates on.
* :mod:`~repro.core.coherence` — coherent relations and the coherent
  closure.
* :mod:`~repro.core.extension` — Lemma 1's constructive extension.
* :mod:`~repro.core.atomicity` — multilevel atomicity, correctability
  (Theorem 2), witness construction.
* :mod:`~repro.core.serializability` — the k=2 and k=3 special cases.
"""

from repro.core.atomicity import (
    CorrectabilityReport,
    atomicity_violations,
    check_correctability,
    equivalent_atomic_order,
    is_correctable,
    is_multilevel_atomic,
)
from repro.core.coherence import (
    ClosureResult,
    Violation,
    coherence_violations,
    coherent_closure,
    coherent_closure_pairs,
    is_coherent,
    is_coherent_total_order,
    total_order_violations,
)
from repro.core.extension import (
    enumerate_coherent_extensions,
    extend_to_coherent_total_order,
)
from repro.core.interleaving import InterleavingSpec
from repro.core.nests import KNest, PathNest
from repro.core.segmentation import BreakpointDescription
from repro.core.serializability import (
    compatibility_sets_spec,
    is_serial,
    is_serializable,
    serializability_spec,
)

__all__ = [
    "KNest",
    "PathNest",
    "BreakpointDescription",
    "InterleavingSpec",
    "Violation",
    "ClosureResult",
    "coherence_violations",
    "is_coherent",
    "coherent_closure",
    "coherent_closure_pairs",
    "is_coherent_total_order",
    "total_order_violations",
    "extend_to_coherent_total_order",
    "enumerate_coherent_extensions",
    "CorrectabilityReport",
    "is_multilevel_atomic",
    "atomicity_violations",
    "check_correctability",
    "is_correctable",
    "equivalent_atomic_order",
    "serializability_spec",
    "compatibility_sets_spec",
    "is_serializable",
    "is_serial",
]
