"""Vectorized (numpy) backend for the coherent-closure bootstrap.

The pure-Python :class:`~repro.core.coherence.ClosureEngine` keeps
descendant bitsets as Python ints and saturates rule (b) one segment at
a time.  That is the right shape for the *online* path (one step per
call), but the *batch* bootstrap — load every transaction, then
saturate from scratch — spends almost all of its time in big-int
algebra that vectorizes perfectly.  This module packs the same state
into 2-D ``uint64`` matrices and runs the whole fixpoint as
whole-matrix bitwise operations:

Packing layout
    Transactions become contiguous *blocks* of rows.  Each block's
    columns start on a byte boundary (``ceil(len/8)`` bytes per block),
    so a transaction's presence mask is a byte mask and the
    rule-(b) partner filter ``P`` is a per-(level, class-pair) row of
    ``0x00``/``0xFF`` bytes — no sub-byte masking in the hot loop.
    ``pad_ids[i]`` maps dense node id ``i`` to its padded bit column.

Single-Kahn schedule
    Every rule-(b) edge runs from a segment's last step to a step whose
    transaction is *strictly deeper* in the block graph of the seed
    edges (the target is already reachable from the segment, so its
    block is a descendant).  One block-level Kahn ranking computed up
    front therefore stays valid for every edge the saturation will ever
    add.  If the block graph is cyclic, or any same-block seed edge
    points backward, the closure is cyclic and the kernel *declines* —
    the pure-Python engine then produces its canonical witness, keeping
    cycle witnesses bit-identical across backends.

Super-level fixpoint
    Ranks are grouped into super-levels processed deepest-first.
    Within one super-level: sweep its ranks (entity-edge pulls and
    chain cascades), then saturate its segments with byte-domain greedy
    passes — leader extraction is ``argmax`` over the first nonzero
    byte plus a 256-entry lowest-bit table — and converge local
    staleness with change-filtered mini-sweeps.  Generated edges always
    point into deeper, already-final rows, so no global re-sweep is
    ever needed.

Backend seam
    :meth:`ClosureEngine.bootstrap` consults :func:`should_try`:
    the ``REPRO_CLOSURE_BACKEND`` environment variable selects
    ``numpy``, ``python``, or ``auto`` (default; numpy from
    :data:`NUMPY_MIN_NODES` nodes up).  The kernel returns ``None``
    whenever it cannot run (numpy missing, engine grown step-wise,
    cyclic), and the caller falls through to the pure-Python path — the
    Python engine is both the fallback and the differential oracle
    (``tests/core/test_closure_kernel.py``).

The closure itself is backend-independent (the coherent closure is a
unique fixpoint), and this kernel reproduces the Python engine's
descendant bitsets *bit for bit*.  Generating-edge sets and the
``iterations`` counter may differ between backends; verdicts, closures
and cycle witnesses never do.
"""

from __future__ import annotations

import os

try:  # pragma: no cover - exercised via the no-numpy CI job
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "NUMPY_MIN_NODES",
    "SUPERLEVEL_RANKS",
    "backend_choice",
    "default_backend",
    "kernel_available",
    "should_try",
    "bootstrap_engine",
]

#: Below this node count ``auto`` stays on the Python engine: per-call
#: numpy dispatch overhead (~20-50us an op) swamps the win on small
#: graphs (measured E1 crossover is near 3200 steps), and the online
#: window keeps engines small by pruning.
NUMPY_MIN_NODES = 3072

#: Kahn ranks fused per super-level.  Larger values amortize sweep
#: dispatch over more rows; smaller values shrink the staleness window
#: the inner refresh rounds must converge.  14 measured best on E1.
SUPERLEVEL_RANKS = 14

_ENV_VAR = "REPRO_CLOSURE_BACKEND"
_CHOICES = ("auto", "numpy", "python")

if _np is not None:
    #: lowest set bit per byte value (8 for 0) — leader extraction.
    _LOWBIT = _np.full(256, 8, dtype=_np.uint8)
    for _v in range(1, 256):
        _LOWBIT[_v] = (_v & -_v).bit_length() - 1
    del _v


def kernel_available() -> bool:
    """Whether the numpy backend can run at all in this interpreter."""
    return _np is not None


def backend_choice() -> str:
    """The configured backend: ``REPRO_CLOSURE_BACKEND`` or ``auto``.

    Read from the environment on every call so tests and benchmark
    harnesses can force a backend around individual measurements.
    """
    value = os.environ.get(_ENV_VAR, "auto").strip().lower() or "auto"
    if value not in _CHOICES:
        raise ValueError(
            f"{_ENV_VAR}={value!r}: expected one of {', '.join(_CHOICES)}"
        )
    return value


def default_backend() -> str:
    """The backend a large batch bootstrap would use right now (what
    ``auto`` resolves to) — label value for metrics surfaces."""
    choice = backend_choice()
    if choice == "python":
        return "python"
    return "numpy" if _np is not None else "python"


def should_try(n_nodes: int) -> bool:
    """Whether :meth:`ClosureEngine.bootstrap` should attempt the
    vectorized kernel for an ``n_nodes``-step load."""
    choice = backend_choice()
    if choice == "python" or _np is None:
        return False
    if choice == "numpy":
        return n_nodes > 0
    return n_nodes >= NUMPY_MIN_NODES


# ---------------------------------------------------------------------------
# engine state -> packed arrays
# ---------------------------------------------------------------------------


def _arrays_from_engine(engine):
    """Pack a freshly batch-loaded engine into kernel arrays.

    Returns ``None`` when the engine does not qualify: transactions not
    loaded as contiguous dense-id blocks, or a same-block seed edge
    pointing backward (a guaranteed cycle — the Python path owns the
    witness).
    """
    np = _np
    index = engine.index
    n = len(index)
    blocks = engine._blocks
    T = len(blocks)
    if not T or not n:
        return None
    blen = np.fromiter((hi - lo + 1 for _t, lo, hi in blocks), np.int64, T)
    lo_arr = np.fromiter((lo for _t, lo, _hi in blocks), np.int64, T)
    first_dense = np.concatenate(([0], np.cumsum(blen[:-1])))
    if int(blen.sum()) != n or not np.array_equal(lo_arr, first_dense):
        return None
    bbytes = (blen + 7) >> 3
    bstart_byte = np.concatenate(([0], np.cumsum(bbytes)))
    BY = int(bstart_byte[-1])
    W = (BY + 7) >> 3
    blk = np.repeat(np.arange(T), blen)
    pad_ids = bstart_byte[blk] * 8 + (np.arange(n) - first_dense[blk])
    byte_blk = np.repeat(np.arange(T), bbytes)

    if engine._seed_ids:
        se = np.array(engine._seed_ids, dtype=np.int64)
        es, ed = se[:, 0], se[:, 1]
    else:
        es = ed = np.empty(0, np.int64)
    same = blk[es] == blk[ed]
    if bool(np.any(es[same] >= ed[same])):
        return None  # backward/self same-block edge: cyclic
    cross = ~same
    es, ed = es[cross], ed[cross]
    seed_keys = es * n + ed

    # Multi-member segments straight from the engine (single-member
    # segments never owe an edge: first == last).  The engine built
    # them from the shared cut-boundary sweep, so the two backends
    # cannot disagree on segmentation by construction.
    bi_of_txn = {txn: bi for bi, (txn, _lo, _hi) in enumerate(blocks)}
    sf_l: list[int] = []
    sl_l: list[int] = []
    stx_l: list[int] = []
    slv_l: list[int] = []
    for seg in engine._segs:
        if seg.first != seg.last:
            sf_l.append(seg.first)
            sl_l.append(seg.last)
            stx_l.append(bi_of_txn[seg.txn])
            slv_l.append(seg.level)

    # Per-level class ids over blocks, factorized to small ints.
    k = engine.k
    cids = engine._cids
    cid_arr = []
    for lv0 in range(k):
        uniq: dict = {}
        arr = np.empty(T, np.int64)
        for bi, (txn, _lo, _hi) in enumerate(blocks):
            c = cids[txn][lv0]
            arr[bi] = uniq.setdefault(c, len(uniq))
        cid_arr.append(arr)

    # Partner byte-mask rows, shared across segments with the same
    # (level, same-class, closer-class) key.
    pkey: dict[tuple[int, int, int], int] = {}
    prow_list: list = []
    pid = np.zeros(len(sf_l), dtype=np.int64)
    for i in range(len(sf_l)):
        bi = stx_l[i]
        level = slv_l[i]
        c1 = int(cid_arr[level - 1][bi])
        c2 = int(cid_arr[level][bi]) if level < k else -1
        key = (level, c1, c2)
        j = pkey.get(key)
        if j is None:
            j = len(prow_list)
            pkey[key] = j
            tmask = cid_arr[level - 1] == c1
            if level < k:
                tmask &= cid_arr[level] != c2
            prow_list.append(np.repeat(tmask, bbytes))
        pid[i] = j
    P = (
        np.vstack(prow_list)
        if prow_list
        else np.zeros((0, BY), dtype=bool)
    ).astype(np.uint8) * np.uint8(0xFF)

    return dict(
        n=n,
        T=T,
        W=W,
        BY=BY,
        blen=blen,
        bstart_byte=bstart_byte[:-1],
        blk=blk,
        first_dense=first_dense,
        pad_ids=pad_ids,
        byte_blk=byte_blk,
        es=es,
        ed=ed,
        seed_keys=seed_keys,
        sf=np.array(sf_l, dtype=np.int64),
        sl=np.array(sl_l, dtype=np.int64),
        stx=np.array(stx_l, dtype=np.int64),
        pid=pid,
        P=P,
    )


def _kahn_blocks(d):
    """Block-level Kahn ranks from the cross-block seed edges.

    Returns ``(rank, n_levels)``, or ``(None, 0)`` when the block graph
    is cyclic (the closure then necessarily is too).
    """
    np = _np
    T = d["T"]
    bs = d["blk"][d["es"]]
    bd = d["blk"][d["ed"]]
    pair = np.unique(bs * T + bd)
    bs, bd = pair // T, pair % T
    indeg = np.bincount(bd, minlength=T)
    order = np.argsort(bs, kind="stable")
    ds = bd[order]
    starts = np.searchsorted(bs[order], np.arange(T + 1))
    rank = np.full(T, -1, dtype=np.int64)
    frontier = np.flatnonzero(indeg == 0)
    seen = 0
    r = 0
    while frontier.size:
        rank[frontier] = r
        seen += frontier.size
        b, e = starts[frontier], starts[frontier + 1]
        L = e - b
        tot = int(L.sum())
        if not tot:
            break
        shift = np.cumsum(L)
        flat = np.arange(tot) + np.repeat(
            b - np.concatenate(([0], shift[:-1])), L
        )
        succ = ds[flat]
        indeg -= np.bincount(succ, minlength=T)
        cand = np.unique(succ)
        frontier = cand[indeg[cand] == 0]
        r += 1
    if seen < T:
        return None, 0
    return rank, int(rank.max()) + 1


def _prep_slices(es, ed, keyr):
    """Group edges into conflict-free ``(key, position)`` slices so
    ``R[u] |= R[v]`` fancy indexing never writes one row twice; returned
    as ``{key: [(u_slice, v_slice), ...]}``."""
    np = _np
    if not es.size:
        return {}
    o1 = np.lexsort((ed, es))
    u1, v1, r1 = es[o1], ed[o1], keyr[o1]
    gs = np.flatnonzero(np.concatenate(([True], u1[1:] != u1[:-1])))
    posn = np.arange(u1.size) - np.repeat(
        gs, np.diff(np.concatenate((gs, [u1.size])))
    )
    maxp = int(posn.max()) + 1
    key = r1 * maxp + posn
    o2 = np.argsort(key, kind="stable")
    u2, v2, k2 = u1[o2], v1[o2], key[o2]
    bnd = np.concatenate(
        ([0], np.flatnonzero(k2[1:] != k2[:-1]) + 1, [k2.size])
    )
    out: dict = {}
    for a, b in zip(bnd[:-1], bnd[1:]):
        out.setdefault(int(k2[a]) // maxp, []).append((u2[a:b], v2[a:b]))
    return out


# ---------------------------------------------------------------------------
# the fixpoint
# ---------------------------------------------------------------------------


def _saturate(d, rank, nlev, sl_ranks=SUPERLEVEL_RANKS):
    """Run the super-level fixpoint; returns ``(R, Rb, rule_b_src,
    rule_b_tgt, inner_rounds)`` with ``R`` the padded reachability
    matrix (reflexive) and the rule-(b) edges deduplicated."""
    np = _np
    n, W, BY, T = d["n"], d["W"], d["BY"], d["T"]
    blk = d["blk"]
    blen = d["blen"]
    fdense = d["first_dense"]
    R = np.zeros((n, W), dtype=np.uint64)
    Rb = R.view(np.uint8)[:, :BY]
    pb = d["pad_ids"]
    Rb[np.arange(n), pb >> 3] |= np.uint8(1) << (pb & 7).astype(np.uint8)

    nS = max(1, -(-nlev // sl_ranks))
    sl_of_rank = np.minimum(np.arange(nlev) // sl_ranks, nS - 1)
    sl_of_blk = sl_of_rank[rank]
    cross = _prep_slices(d["es"], d["ed"], rank[blk[d["es"]]])
    casc = {}
    for r in range(nlev):
        bl_r = np.flatnonzero(rank == r)
        bl = blen[bl_r]
        mx = int(bl.max()) if bl_r.size else 0
        ops = []
        for j in range(mx - 2, -1, -1):
            sel = bl > j + 1
            if sel.any():
                ops.append(fdense[bl_r[sel]] + j)
        casc[r] = ops
    sf, sl_, pid, P = d["sf"], d["sl"], d["pid"], d["P"]
    seg_sl = (
        sl_of_rank[rank[d["stx"]]] if sf.size else np.empty(0, np.int64)
    )
    bblk = d["byte_blk"]
    bsb = d["bstart_byte"]
    add_src: list = []
    add_tgt: list = []
    inner_rounds = 0
    for s in range(nS - 1, -1, -1):
        r_hi = min(nlev, (s + 1) * sl_ranks) - 1
        r_lo = s * sl_ranks
        for r in range(r_hi, r_lo - 1, -1):
            for u, v in cross.get(r, ()):
                R[u] |= R[v]
            for rows in casc[r]:
                R[rows] |= R[rows + 1]
        gi = np.flatnonzero(seg_sl == s)
        if not gi.size:
            continue
        sfr0, slr0, pidr0 = sf[gi], sl_[gi], pid[gi]
        # The same last step can close segments at several levels;
        # partition into parts with unique lasts so the fancy-indexed
        # |= below is conflict-free.
        order = np.argsort(slr0, kind="stable")
        su = slr0[order]
        gs2 = np.flatnonzero(np.concatenate(([True], su[1:] != su[:-1])))
        pzn = np.arange(su.size) - np.repeat(
            gs2, np.diff(np.concatenate((gs2, [su.size])))
        )
        parts = [order[pzn == p] for p in range(int(pzn.max()) + 1)]
        in_sl = (sl_of_blk[blk[d["es"]]] == s) & (
            sl_of_blk[blk[d["ed"]]] == s
        )
        es_sl, ed_sl = d["es"][in_sl], d["ed"][in_sl]
        ns_src: list = []  # rule-(b) edges landing inside this super-level:
        ns_tgt: list = []  # their targets can still grow, so refresh sweeps
        while True:  # must re-pull through them (unlike deeper targets).
            inner_rounds += 1
            round_srcs = []
            for part in parts:
                sfr, slr = sfr0[part], slr0[part]
                M = Rb[sfr] & P[pidr0[part]]
                M &= ~Rb[slr]
                while True:
                    act = M.any(axis=1)
                    if not act.any():
                        break
                    if not act.all():
                        ai = np.flatnonzero(act)
                        M = M[ai]
                        sfr = sfr[ai]
                        slr = slr[ai]
                    # Leader = lowest missing bit per segment; one edge
                    # to it covers everything the leader reaches.
                    lb = (M != 0).argmax(axis=1)
                    lbyte = M[np.arange(M.shape[0]), lb]
                    blkb = bblk[lb]
                    tgt = (
                        fdense[blkb]
                        + (lb - bsb[blkb]) * 8
                        + _LOWBIT[lbyte]
                    )
                    M &= ~Rb[tgt]
                    R[slr] |= R[tgt]
                    add_src.append(slr.copy())
                    add_tgt.append(tgt)
                    in_s = sl_of_blk[blk[tgt]] == s
                    if in_s.any():
                        ns_src.append(slr[in_s])
                        ns_tgt.append(tgt[in_s])
                    round_srcs.append(slr)
            if not round_srcs:
                break
            # Refresh: re-sweep the super-level blocks that reach a
            # modified last — their rows are now stale.
            mods = np.concatenate(round_srcs)
            lastmask = np.zeros(d["BY"], dtype=np.uint8)
            pbs = pb[mods]
            np.bitwise_or.at(
                lastmask,
                pbs >> 3,
                np.uint8(1) << (pbs & 7).astype(np.uint8),
            )
            sl_blocks = np.flatnonzero(sl_of_blk == s)
            hit = (Rb[fdense[sl_blocks]] & lastmask[None, :]).any(axis=1)
            chg = np.zeros(T, dtype=bool)
            chg[sl_blocks[hit]] = True
            eu = []
            ev = []
            if es_sl.size:
                sel = chg[blk[es_sl]] | chg[blk[ed_sl]]
                if sel.any():
                    eu.append(es_sl[sel])
                    ev.append(ed_sl[sel])
            if ns_src:
                bsrc = np.concatenate(ns_src)
                btgt = np.concatenate(ns_tgt)
                bsel = chg[blk[btgt]]
                if bsel.any():
                    eu.append(bsrc[bsel])
                    ev.append(btgt[bsel])
            mini = {}
            if eu:
                eua = np.concatenate(eu)
                eva = np.concatenate(ev)
                mini = _prep_slices(eua, eva, rank[blk[eua]])
            for r in range(r_hi, r_lo - 1, -1):
                for u, v in mini.get(r, ()):
                    R[u] |= R[v]
                for rows in casc[r]:
                    R[rows] |= R[rows + 1]
    if add_src:
        asrc = np.concatenate(add_src)
        atgt = np.concatenate(add_tgt)
        pairk = np.unique(asrc * n + atgt)
        asrc, atgt = pairk // n, pairk % n
    else:
        asrc = atgt = np.empty(0, np.int64)
    return R, Rb, asrc, atgt, inner_rounds


# ---------------------------------------------------------------------------
# writeback
# ---------------------------------------------------------------------------


class _LazyBits:
    """Deferred writeback of kernel results into a
    :class:`~repro.core.reach.ReachabilityIndex`.

    One-shot checks never read the materialized bitsets (the verdict is
    already decided), so the packed rows stay in numpy until a caller
    actually touches the index — then :meth:`materialize` converts each
    padded row to a dense Python int and folds the rule-(b) edges into
    the adjacency.
    """

    __slots__ = ("_rows", "_pad", "_src", "_tgt")

    def __init__(self, rows, pad_ids, src, tgt) -> None:
        self._rows = rows
        self._pad = pad_ids
        self._src = src
        self._tgt = tgt

    def materialize(self, index) -> None:
        np = _np
        n = self._rows.shape[0]
        bits = np.unpackbits(self._rows, axis=1, bitorder="little")[
            :, self._pad
        ]
        packed = np.packbits(bits, axis=1, bitorder="little")
        blob = packed.tobytes()
        stride = packed.shape[1]
        reach = index._reach
        for i in range(n):
            reach[i] = int.from_bytes(
                blob[i * stride : (i + 1) * stride], "little"
            )
        adj = index._adj
        radj = index._radj
        for u, v in zip(self._src.tolist(), self._tgt.tolist()):
            adj[u] |= 1 << v
            radj[v] |= 1 << u


def bootstrap_engine(engine, eager: bool = True) -> bool | None:
    """Attempt the vectorized bootstrap of a batch-loaded engine.

    On success the engine is exact and saturated — indistinguishable
    from a Python :meth:`~repro.core.coherence.ClosureEngine.bootstrap`
    except for generating-edge bookkeeping — and ``True`` is returned.
    With ``eager=False`` the index writeback is deferred until first
    touched (see :class:`_LazyBits`); pass ``eager=True`` whenever the
    engine stays live for online updates.

    Returns ``None`` when the kernel declines (numpy missing, engine
    not batch-loaded, cyclic closure): the caller must fall through to
    the Python path.
    """
    if _np is None:
        return None
    d = _arrays_from_engine(engine)
    if d is None:
        return None
    rank, nlev = _kahn_blocks(d)
    if rank is None:
        return None
    R, Rb, asrc, atgt, rounds = _saturate(d, rank, nlev)
    del R
    index = engine.index
    n = d["n"]
    if asrc.size and d["seed_keys"].size:
        dup = _np.isin(asrc * n + atgt, d["seed_keys"])
        if dup.any():
            keep = ~dup
            asrc, atgt = asrc[keep], atgt[keep]
    index.edges += int(asrc.size)
    engine.edges_added += int(asrc.size)
    engine.iterations += int(rounds)
    engine._pending.clear()
    for seg in engine._segs:
        seg.dirty = False
    index._topo = None
    index.last_changed = 0
    payload = _LazyBits(Rb, d["pad_ids"], asrc, atgt)
    if eager:
        payload.materialize(index)
    else:
        index._lazy = payload
    return True
