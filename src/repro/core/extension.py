"""Extending a coherent partial order to a coherent total order.

This module implements Lemma 1 of the paper *constructively*, following
the staged algorithm of its Appendix:

    Stage ``i`` (for ``i = 2 .. k``) partitions the steps into the
    ``B_t(i-1)``-segments of all transactions, builds the directed graph
    whose nodes are segments with an edge ``S1 -> S2`` whenever some step
    of ``S1`` precedes (in the current order) some step of ``S2``,
    condenses it to strongly connected components, totally orders the
    components topologically, and adds every cross-component step pair to
    the order.

The paper proves (Lemmas 3-5) that each stage preserves coherence and
acyclicity and that after stage ``i`` every pair of steps whose
transactions are related at level ``< i`` is comparable; after stage ``k``
the order is total.

This procedure is the *witness generator* behind Theorem 2: applied to the
coherent closure of a correctable execution's dependency order it produces
an equivalent multilevel-atomic execution.

Internally the growing order is kept as a generating digraph: instead of
materialising all cross-component pairs of a stage we thread a chain of
virtual *rank* nodes between consecutive components, so reachability over
the graph equals the constructed order while the graph stays linear-size
per stage.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable, Iterable, Iterator, Sequence
from typing import TypeVar

import networkx as nx

from repro.core.coherence import is_coherent_total_order
from repro.core.interleaving import InterleavingSpec
from repro.errors import NotAPartialOrderError

S = TypeVar("S", bound=Hashable)

__all__ = [
    "extend_to_coherent_total_order",
    "enumerate_coherent_extensions",
]


class _Rank:
    """Virtual node threading the component order of one stage."""

    __slots__ = ("stage", "index")

    def __init__(self, stage: int, index: int) -> None:
        self.stage = stage
        self.index = index

    def __repr__(self) -> str:
        return f"_Rank({self.stage}, {self.index})"


def _lexicographic_topological_sort(graph: nx.DiGraph) -> list:
    """Deterministic topological sort (smallest ``repr`` first)."""
    indegree = {node: graph.in_degree(node) for node in graph.nodes}
    heap = [(repr(node), node) for node, deg in indegree.items() if deg == 0]
    heapq.heapify(heap)
    out = []
    while heap:
        _, node = heapq.heappop(heap)
        out.append(node)
        for succ in graph.successors(node):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, (repr(succ), succ))
    if len(out) != graph.number_of_nodes():
        raise NotAPartialOrderError("relation contains a cycle")
    return out


def extend_to_coherent_total_order(
    spec: InterleavingSpec,
    order: Iterable[tuple[S, S]] | nx.DiGraph,
    verify: bool = True,
) -> list[S]:
    """Extend a coherent partial order to a coherent total order (Lemma 1).

    Parameters
    ----------
    spec:
        The k-nest and breakpoint descriptions.
    order:
        The coherent partial order, as either an edge iterable or a
        digraph whose *reachability* is the order.  It must already be
        coherent (e.g. a coherent closure); per-transaction chain edges
        are added automatically.
    verify:
        When true (default), the resulting sequence is checked to be a
        coherent total order; a failure means ``order`` was not coherent.

    Returns
    -------
    list:
        All steps of the specification in a coherent total order — the
        equivalent multilevel-atomic schedule.
    """
    graph: nx.DiGraph = nx.DiGraph()
    steps = sorted(spec.steps, key=repr)
    graph.add_nodes_from(steps)
    graph.add_edges_from(spec.chain_pairs())
    if isinstance(order, nx.DiGraph):
        graph.add_edges_from(order.edges)
    else:
        graph.add_edges_from(order)
    bit_of = {step: i for i, step in enumerate(steps)}

    for stage in range(2, spec.k + 1):
        # Partition all steps into B_t(stage - 1)-segments.
        segment_of: dict[S, int] = {}
        segment_members: list[tuple[S, ...]] = []
        for txn in sorted(spec.transactions, key=repr):
            for segment in spec.description(txn).segments(stage - 1):
                sid = len(segment_members)
                segment_members.append(segment)
                for step in segment:
                    segment_of[step] = sid

        # Step-level reachability masks over the current graph (virtual
        # rank nodes participate in propagation but carry no bit).
        topo = _lexicographic_topological_sort(graph)
        reach: dict = {}
        for node in reversed(topo):
            mask = 1 << bit_of[node] if node in bit_of else 0
            for succ in graph.successors(node):
                mask |= reach[succ]
            reach[node] = mask

        # Segment graph: S1 -> S2 iff some step of S1 reaches some step of
        # a different segment S2.
        seg_graph: nx.DiGraph = nx.DiGraph()
        seg_graph.add_nodes_from(range(len(segment_members)))
        for sid, members in enumerate(segment_members):
            union = 0
            for step in members:
                union |= reach[step]
            while union:
                low = union & -union
                target = steps[low.bit_length() - 1]
                tid = segment_of[target]
                if tid != sid:
                    seg_graph.add_edge(sid, tid)
                union ^= low

        # Condense to SCCs and order the components.
        condensation = nx.condensation(seg_graph)
        component_order = _lexicographic_topological_sort(condensation)

        # Thread rank nodes: every step of component m precedes the rank
        # node of m, which precedes every step of component m + 1 (and the
        # next rank node), realising exactly the cross-component pairs.
        previous_rank = None
        for index, comp in enumerate(component_order):
            rank = _Rank(stage, index)
            graph.add_node(rank)
            for sid in condensation.nodes[comp]["members"]:
                for step in segment_members[sid]:
                    graph.add_edge(step, rank)
                    if previous_rank is not None:
                        graph.add_edge(previous_rank, step)
            if previous_rank is not None:
                graph.add_edge(previous_rank, rank)
            previous_rank = rank

    total = [n for n in _lexicographic_topological_sort(graph) if n in bit_of]
    if verify and not is_coherent_total_order(spec, total):
        raise NotAPartialOrderError(
            "input order was not coherent: the staged extension produced a "
            "non-coherent total order"
        )
    return total


def enumerate_coherent_extensions(
    spec: InterleavingSpec,
    order: Iterable[tuple[S, S]],
    limit: int | None = None,
) -> Iterator[tuple[S, ...]]:
    """Enumerate *all* coherent total orders containing ``order``.

    Brute force over topological linearisations; intended for the paper's
    small worked examples (Section 5.1's example has exactly two).  ``limit``
    caps the number of linearisations inspected.
    """
    graph: nx.DiGraph = nx.DiGraph()
    graph.add_nodes_from(spec.steps)
    graph.add_edges_from(spec.chain_pairs())
    graph.add_edges_from(order)
    if not nx.is_directed_acyclic_graph(graph):
        return  # a cyclic seed has no extensions at all
    inspected = 0
    for linearisation in nx.all_topological_sorts(graph):
        inspected += 1
        if limit is not None and inspected > limit:
            raise NotAPartialOrderError(
                f"more than {limit} linearisations; refusing brute force"
            )
        if is_coherent_total_order(spec, linearisation):
            yield tuple(linearisation)
