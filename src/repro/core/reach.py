"""Incremental bitset reachability over growing directed graphs.

This is the performance core behind the Theorem-2 coherent-closure
machinery (:mod:`repro.core.coherence`) and the on-line closure window
(:mod:`repro.engine.closure_window`).  Nodes are interned to dense
integer ids; adjacency and the full descendant relation are kept as
Python ``int`` bitsets, so set algebra runs at machine-word speed and a
reachability query is a single ``&``.

The central operation is *online edge insertion* in the style of
Italiano's incremental DAG-reachability algorithm: ``add_edge(u, v)``
unions ``reach[v] | {v}`` into ``u`` and then walks *up* the predecessor
graph, updating exactly the ancestors whose descendant set actually
changes.  The cost is proportional to the affected region, not the whole
graph — the property the closure engine exploits to avoid re-running
reachability from scratch after every performed step.

Cycle detection is a by-product: inserting ``u -> v`` when ``u`` is
already reachable from ``v`` closes a cycle, and a witness path is
extracted from the adjacency bitsets on the spot.  After a cycle the
index is *terminal*: descendant sets are no longer maintained (a cyclic
closure is already a final verdict for every caller here).

The vectorized closure kernel (:mod:`repro.core.closure_kernel`) may
park its packed result on an index instead of materializing it
immediately: one-shot correctability checks read only the verdict, so
converting every row back to a Python int would be pure overhead.  Any
method that touches adjacency, reachability, or the topological order
first calls ``_force()``, which drains the pending payload — callers
never observe the difference.

Two convenience module functions cover the common batch shapes:
:func:`reachable_sets` (one reverse-topological sweep over an acyclic
edge list, e.g. an execution's dependency order) and :func:`is_acyclic`
(Kahn's algorithm over plain dicts, e.g. a serialization graph).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Sequence
from typing import TypeVar

N = TypeVar("N", bound=Hashable)

__all__ = [
    "ReachabilityIndex",
    "iter_bits",
    "reachable_sets",
    "transitive_pairs",
    "is_acyclic",
]


def iter_bits(mask: int):
    """Yield the set bit positions of ``mask`` (lowest first)."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class ReachabilityIndex:
    """Dense-id digraph with incrementally maintained descendant bitsets.

    ``reach[i]`` is the bitset of every node reachable from node ``i``,
    *including* ``i`` itself (the reflexive-transitive closure), kept
    exact after every :meth:`add_edge` while the graph stays acyclic.

    Counters
    --------
    edges:
        Number of distinct edges inserted.
    edges_propagated:
        Number of (node, delta) propagation events — how many ancestor
        bitsets an insertion actually had to touch.  This is the
        "O(affected)" quantity of the incremental algorithm.
    word_ops:
        Approximate machine-word operations spent on bitset algebra
        (each big-int op is charged ``ceil(n / 64)`` words).
    """

    __slots__ = (
        "_id_of",
        "_nodes",
        "_adj",
        "_radj",
        "_reach",
        "_words",
        "_topo",
        "_lazy",
        "cycle_ids",
        "edges",
        "edges_propagated",
        "word_ops",
        "last_changed",
    )

    def __init__(self) -> None:
        self._id_of: dict[N, int] = {}
        self._nodes: list[N] = []
        self._adj: list[int] = []
        self._radj: list[int] = []
        self._reach: list[int] = []
        self._words = 1
        self._topo: list[int] | None = None
        self._lazy = None
        self.cycle_ids: list[int] | None = None
        self.edges = 0
        self.edges_propagated = 0
        self.word_ops = 0
        self.last_changed = 0

    def _force(self) -> None:
        """Drain a deferred kernel writeback (no-op when none pending)."""
        if self._lazy is not None:
            payload, self._lazy = self._lazy, None
            payload.materialize(self)

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: object) -> bool:
        return node in self._id_of

    @property
    def nodes(self) -> list[N]:
        return list(self._nodes)

    @property
    def cyclic(self) -> bool:
        return self.cycle_ids is not None

    def id_of(self, node: N) -> int:
        return self._id_of[node]

    def node_of(self, nid: int) -> N:
        return self._nodes[nid]

    def add_node(self, node: N) -> int:
        """Intern ``node`` (idempotent) and return its dense id."""
        nid = self._id_of.get(node)
        if nid is not None:
            return nid
        self._force()
        nid = len(self._nodes)
        self._id_of[node] = nid
        self._nodes.append(node)
        self._adj.append(0)
        self._radj.append(0)
        self._reach.append(1 << nid)
        self._words = (len(self._nodes) + 63) >> 6
        return nid

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------

    def has_edge(self, u: N, v: N) -> bool:
        self._force()
        return bool(self._adj[self._id_of[u]] & (1 << self._id_of[v]))

    def reaches(self, u: N, v: N) -> bool:
        """Whether ``v`` is reachable from ``u`` (reflexively)."""
        self._force()
        return bool(self._reach[self._id_of[u]] & (1 << self._id_of[v]))

    def descendants_mask(self, node: N) -> int:
        """Bitset of the strict descendants of ``node``."""
        self._force()
        nid = self._id_of[node]
        return self._reach[nid] & ~(1 << nid)

    def ancestors_mask(self, node: N) -> int:
        """Bitset of the strict ancestors of ``node`` (linear scan over
        the descendant bitsets; no reverse index is maintained)."""
        self._force()
        bit = 1 << self._id_of[node]
        out = 0
        for nid, mask in enumerate(self._reach):
            if mask & bit:
                out |= 1 << nid
        out &= ~bit
        self.word_ops += len(self._nodes) * self._words
        return out

    def add_edge(self, u: N, v: N) -> tuple[bool, list[int]]:
        """Insert edge ``u -> v`` and propagate reachability.

        Returns ``(acyclic, affected)`` where ``affected`` lists the ids
        whose descendant bitsets changed (``u`` first when it changed).
        When the edge closes a cycle the index records a witness in
        :attr:`cycle_ids` (a closed id path) and returns ``(False, [])``;
        descendant bitsets are then no longer maintained.
        """
        return self.add_edge_ids(self._id_of[u], self._id_of[v])

    def add_edge_ids(self, iu: int, iv: int) -> tuple[bool, list[int]]:
        self._force()
        bit_v = 1 << iv
        if self._adj[iu] & bit_v:
            return True, []
        self._adj[iu] |= bit_v
        self._radj[iv] |= 1 << iu
        self.edges += 1
        if iu == iv or self._reach[iv] & (1 << iu):
            self.cycle_ids = self._extract_cycle(iu, iv)
            return False, []
        reach = self._reach
        delta = reach[iv] & ~reach[iu]
        if not delta:
            self.word_ops += self._words
            return True, []
        reach[iu] |= delta
        affected = [iu]
        stack = [(iu, delta)]
        words = self._words
        ops = 2 * words
        propagated = 1
        radj = self._radj
        while stack:
            nid, delta = stack.pop()
            preds = radj[nid]
            while preds:
                low = preds & -preds
                pid = low.bit_length() - 1
                preds ^= low
                fresh = delta & ~reach[pid]
                ops += words
                if fresh:
                    reach[pid] |= fresh
                    ops += words
                    propagated += 1
                    affected.append(pid)
                    stack.append((pid, fresh))
        self.word_ops += ops
        self.edges_propagated += propagated
        return True, affected

    def add_edge_silent_ids(self, iu: int, iv: int) -> None:
        """Insert edge ``iu -> iv`` into the adjacency only, leaving the
        descendant bitsets stale.  Batch loading: insert everything
        silently, then call :meth:`recompute` once — O(n + m) sweeps
        instead of per-edge ancestor propagation (which is quadratic when
        seeding a large graph edge by edge)."""
        self._force()
        bit_v = 1 << iv
        if self._adj[iu] & bit_v:
            return
        self._adj[iu] |= bit_v
        self._radj[iv] |= 1 << iu
        self.edges += 1

    def recompute(self) -> bool:
        """Rebuild every descendant bitset from the adjacency in one
        reverse-topological sweep (Kahn's algorithm over predecessor
        popcounts).  Returns ``False`` — recording a witness in
        :attr:`cycle_ids` — when the graph is cyclic.  On success
        :attr:`last_changed` holds the bitmask of nodes whose descendant
        set actually changed."""
        self._force()
        n = len(self._nodes)
        adj = self._adj
        radj = self._radj
        indegree = [mask.bit_count() for mask in radj]
        ready = [i for i in range(n) if not indegree[i]]
        order: list[int] = []
        while ready:
            nid = ready.pop()
            order.append(nid)
            succs = adj[nid]
            while succs:
                low = succs & -succs
                sid = low.bit_length() - 1
                succs ^= low
                indegree[sid] -= 1
                if not indegree[sid]:
                    ready.append(sid)
        if len(order) < n:
            self.cycle_ids = self._cycle_among(
                [i for i in range(n) if indegree[i]]
            )
            return False
        reach = self._reach
        changed = 0
        for nid in reversed(order):
            mask = 1 << nid
            succs = adj[nid]
            while succs:
                low = succs & -succs
                mask |= reach[low.bit_length() - 1]
                succs ^= low
            if mask != reach[nid]:
                reach[nid] = mask
                changed |= 1 << nid
        self._topo = order
        self.last_changed = changed
        self.word_ops += (n + self.edges) * self._words
        return True

    def refresh(
        self, new_edges: Sequence[tuple[int, int]]
    ) -> int | None:
        """Repair descendant bitsets after a *batch* of silent edge
        insertions ``new_edges`` (id pairs).

        Seeds each new edge's target bitset as a *delta* on its source,
        then walks the topological order saved by the last
        :meth:`recompute` in reverse, merging accumulated deltas into
        flagged nodes and pushing only the genuinely *fresh* bits up to
        predecessors — every bit crosses every edge at most once, unlike
        a full successor re-derivation per touched node.  One sweep
        resolves every cascade that runs forward along the saved order;
        edges pointing backward along it defer their predecessors to the
        next sweep.  Cost is proportional to the new information moved,
        plus one O(n) flag scan per sweep.

        Returns the bitmask of changed nodes, or ``None`` when the new
        edges closed a cycle (witness in :attr:`cycle_ids`): a new cycle
        necessarily contains a new edge ``u -> v``, and at the (always
        reached — the sweeps are monotone and bounded) fixpoint ``v``
        then reaches ``u``, so testing the new edges afterwards detects
        it.
        """
        self._force()
        topo = self._topo
        n = len(self._nodes)
        if topo is None or len(topo) != n:
            if not self.recompute():
                return None
            return (1 << n) - 1
        radj = self._radj
        reach = self._reach
        words = self._words
        delta: list[int] = [0] * n
        flags = bytearray(n)
        pending = 0
        for iu, iv in new_edges:
            delta[iu] |= reach[iv]
            if not flags[iu]:
                flags[iu] = 1
                pending += 1
        changed = 0
        ops = 0
        propagated = 0
        while pending:
            for pos in range(n - 1, -1, -1):
                nid = topo[pos]
                if not flags[nid]:
                    continue
                flags[nid] = 0
                pending -= 1
                fresh = delta[nid] & ~reach[nid]
                delta[nid] = 0
                ops += words
                if fresh:
                    reach[nid] |= fresh
                    changed |= 1 << nid
                    propagated += 1
                    preds = radj[nid]
                    while preds:
                        low = preds & -preds
                        pid = low.bit_length() - 1
                        preds ^= low
                        delta[pid] |= fresh
                        ops += words
                        if not flags[pid]:
                            flags[pid] = 1
                            pending += 1
        self.word_ops += ops
        self.edges_propagated += propagated
        # The sweeps above are monotone and bounded, so they terminate
        # even around a cycle; a new cycle necessarily contains one of
        # the new edges, whose target then reaches its source.
        for iu, iv in new_edges:
            if reach[iv] & (1 << iu):
                self.cycle_ids = self._extract_cycle(iu, iv)
                return None
        return changed

    def _cycle_among(self, leftover: list[int]) -> list[int]:
        """A closed witness cycle within ``leftover`` (the nodes Kahn's
        algorithm could not remove — each has a predecessor among them),
        found by walking predecessors until a node repeats."""
        mask = 0
        for nid in leftover:
            mask |= 1 << nid
        pos: dict[int, int] = {}
        path: list[int] = []
        cur = leftover[0]
        while cur not in pos:
            pos[cur] = len(path)
            path.append(cur)
            preds = self._radj[cur] & mask
            cur = (preds & -preds).bit_length() - 1
        cycle = path[pos[cur] :]
        # path walks predecessors, so reverse it for a forward cycle.
        return cycle[::-1] + [cycle[-1]]

    def _extract_cycle(self, iu: int, iv: int) -> list[int]:
        """A closed id path ``[iu, iv, ..., iu]`` along adjacency edges,
        found by BFS from ``iv`` back to ``iu``."""
        if iu == iv:
            return [iu, iu]
        parent: dict[int, int] = {iv: -1}
        queue: deque[int] = deque([iv])
        while queue:
            nid = queue.popleft()
            succs = self._adj[nid]
            while succs:
                low = succs & -succs
                sid = low.bit_length() - 1
                succs ^= low
                if sid not in parent:
                    parent[sid] = nid
                    if sid == iu:
                        path = [iu]
                        while path[-1] != iv:
                            path.append(parent[path[-1]])
                        path.reverse()  # [iv, ..., iu] along adjacency
                        return [iu] + path
                    queue.append(sid)
        raise AssertionError("reachability index inconsistent: no cycle path")

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------

    def iter_edges(self):
        """Yield every inserted edge as a node pair."""
        self._force()
        nodes = self._nodes
        for nid, succs in enumerate(self._adj):
            u = nodes[nid]
            for sid in iter_bits(succs):
                yield u, nodes[sid]

    def pairs(self) -> set[tuple[N, N]]:
        """The strict reachability relation as an explicit pair set (one
        bitset sweep; output-linear instead of per-node graph searches)."""
        self._force()
        nodes = self._nodes
        out: set[tuple[N, N]] = set()
        for nid, mask in enumerate(self._reach):
            u = nodes[nid]
            for did in iter_bits(mask & ~(1 << nid)):
                out.add((u, nodes[did]))
        return out

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------

    def clone(self) -> "ReachabilityIndex":
        """An independent copy (bitsets are immutable ints, so this is a
        shallow list/dict copy — O(n) pointer work)."""
        self._force()
        other = ReachabilityIndex.__new__(ReachabilityIndex)
        other._id_of = dict(self._id_of)
        other._nodes = list(self._nodes)
        other._adj = list(self._adj)
        other._radj = list(self._radj)
        other._reach = list(self._reach)
        other._words = self._words
        other._topo = self._topo
        other._lazy = None
        other.last_changed = self.last_changed
        other.cycle_ids = list(self.cycle_ids) if self.cycle_ids else None
        other.edges = self.edges
        other.edges_propagated = self.edges_propagated
        other.word_ops = self.word_ops
        return other


# ---------------------------------------------------------------------------
# batch helpers
# ---------------------------------------------------------------------------


def reachable_sets(
    order: Sequence[N], edges: Iterable[tuple[N, N]]
) -> dict[N, int]:
    """Strict-descendant bitsets for an edge list whose edges all point
    forward along ``order`` (e.g. an execution's dependency edges).

    One reverse sweep: ``O((n + m) * n / 64)`` words total, no graph
    object, no per-node searches.  Bit ``j`` refers to ``order[j]``.
    """
    index = {node: i for i, node in enumerate(order)}
    succs: list[int] = [0] * len(order)
    for u, v in edges:
        iu, iv = index[u], index[v]
        if iu >= iv:
            raise ValueError(
                f"edge {(u, v)!r} does not point forward along the order"
            )
        succs[iu] |= 1 << iv
    reach: list[int] = [0] * len(order)
    for i in range(len(order) - 1, -1, -1):
        mask = succs[i]
        acc = mask
        for j in iter_bits(mask):
            acc |= reach[j]
        reach[i] = acc
    return {node: reach[i] for node, i in index.items()}


def transitive_pairs(
    order: Sequence[N], edges: Iterable[tuple[N, N]]
) -> set[tuple[N, N]]:
    """The transitive closure of ``edges`` as explicit pairs, for edges
    pointing forward along ``order`` (see :func:`reachable_sets`)."""
    reach = reachable_sets(order, edges)
    out: set[tuple[N, N]] = set()
    for node, mask in reach.items():
        for j in iter_bits(mask):
            out.add((node, order[j]))
    return out


def is_acyclic(nodes: Iterable[N], edges: Iterable[tuple[N, N]]) -> bool:
    """Kahn's algorithm over plain dicts — no graph object needed."""
    succs: dict[N, set[N]] = {node: set() for node in nodes}
    indegree: dict[N, int] = {node: 0 for node in succs}
    for u, v in edges:
        if u == v:
            return False
        targets = succs.setdefault(u, set())
        indegree.setdefault(u, 0)
        indegree.setdefault(v, 0)
        if v not in targets:
            targets.add(v)
            indegree[v] += 1
    ready = [node for node, deg in indegree.items() if deg == 0]
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        for succ in succs.get(node, ()):
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    return seen == len(indegree)
