"""Serializability and compatibility sets as special cases (Section 4.3).

The paper observes that multilevel atomicity *generalises* two earlier
correctness criteria:

* **Serializability** is the ``k = 2`` case: the 2-nest relates all
  transactions at level 1 and nothing at level 2, and the only possible
  breakpoint description groups all steps of a transaction at level 1 and
  splits them into singletons at level 2.  The multilevel-atomic
  executions are then exactly the serial executions, and the correctable
  executions are exactly the serializable ones.

* **Compatibility sets** (Garcia-Molina [G]) are the ``k = 3`` case in
  which ``B_t(2)`` consists of single steps for every transaction:
  transactions in a common level-2 class may interleave arbitrarily while
  transactions in different classes must be serialized with respect to
  each other.

These constructors let the engine's baseline schedulers and the analysis
module express classical criteria through the same Theorem 2 machinery
used for the general case.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from typing import TypeVar

from repro.core.interleaving import InterleavingSpec
from repro.core.nests import KNest
from repro.core.segmentation import BreakpointDescription
from repro.errors import SpecificationError

S = TypeVar("S", bound=Hashable)
T = TypeVar("T", bound=Hashable)

__all__ = [
    "serializability_spec",
    "compatibility_sets_spec",
    "is_serializable",
    "is_serial",
]


def serializability_spec(
    step_orders: Mapping[T, Sequence[S]]
) -> InterleavingSpec:
    """The unique 2-level interleaving specification over the given
    transactions: multilevel atomicity for it *is* serializability."""
    if not step_orders:
        raise SpecificationError("need at least one transaction")
    nest = KNest.flat(step_orders)
    descriptions = {
        txn: BreakpointDescription.serial(steps)
        for txn, steps in step_orders.items()
    }
    return InterleavingSpec(nest, descriptions)


def compatibility_sets_spec(
    step_orders: Mapping[T, Sequence[S]],
    compatibility_classes: Iterable[Iterable[T]],
) -> InterleavingSpec:
    """Garcia-Molina compatibility sets as a 3-level specification.

    ``compatibility_classes`` partitions the transactions; members of a
    common class interleave arbitrarily (single-step level-2 segments),
    while members of different classes are serialized against each other.
    """
    if not step_orders:
        raise SpecificationError("need at least one transaction")
    txns = list(step_orders)
    classes = [list(c) for c in compatibility_classes]
    nest = KNest([
        [txns],
        classes,
        [[t] for t in txns],
    ])
    descriptions = {
        txn: BreakpointDescription.free(steps, k=3)
        for txn, steps in step_orders.items()
    }
    return InterleavingSpec(nest, descriptions)


def is_serial(
    step_orders: Mapping[T, Sequence[S]], sequence: Sequence[S]
) -> bool:
    """Whether ``sequence`` runs the transactions one after another
    (each transaction's steps contiguous and in order)."""
    position = {step: i for i, step in enumerate(sequence)}
    for steps in step_orders.values():
        if not steps:
            continue
        first = position[steps[0]]
        for offset, step in enumerate(steps):
            if position[step] != first + offset:
                return False
    return True


def is_serializable(
    step_orders: Mapping[T, Sequence[S]],
    dependency: Iterable[tuple[S, S]],
) -> bool:
    """Classical serializability via the k = 2 instance of Theorem 2.

    ``dependency`` is the execution's dependency order (same-entity and
    same-transaction precedence pairs).
    """
    from repro.core.atomicity import is_correctable

    return is_correctable(serializability_spec(step_orders), dependency)
