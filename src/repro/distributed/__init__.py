"""The migrating-transaction distributed substrate ([RSL], Section 6).

Entities live on data nodes; transactions migrate from entity to entity
as messages over a latency-simulating network; a sequencer node owns the
concurrency-control state (no control / distributed locking / Section 6
cycle prevention).  Experiment E7 measures the message and latency price
of each control and checks that prevention yields only correctable
executions.
"""

from repro.distributed.controller import (
    DistributedLockControl,
    DistributedPreventControl,
    DistributedResult,
    DistributedRuntime,
    NoControl,
    Sequencer,
)
from repro.distributed.faults import (
    CrashEvent,
    FaultPlan,
    LinkFaults,
    Partition,
)
from repro.distributed.migration import MigratingTransaction
from repro.distributed.network import Message, Network
from repro.distributed.node import DataNode

__all__ = [
    "Message",
    "Network",
    "DataNode",
    "MigratingTransaction",
    "Sequencer",
    "NoControl",
    "DistributedLockControl",
    "DistributedPreventControl",
    "DistributedResult",
    "DistributedRuntime",
    "LinkFaults",
    "CrashEvent",
    "Partition",
    "FaultPlan",
]
