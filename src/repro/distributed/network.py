"""A discrete-event message network.

The distributed substrate runs on simulated time: messages carry a
delivery timestamp drawn from a configurable latency range, a global heap
orders deliveries, and handlers may send further messages.  "The total
order of the execution is determined by real clock time" (Section 6) maps
to simulation time with a deterministic tie-break.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.errors import NetworkError

__all__ = ["Message", "Network"]


@dataclass(frozen=True)
class Message:
    """One network message: a kind tag plus an arbitrary payload dict."""

    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass(order=True)
class _Delivery:
    time: float
    seq: int
    target: str = field(compare=False)
    message: Message = field(compare=False)


class Network:
    """Latency-simulating message bus between named handlers."""

    def __init__(
        self,
        latency: tuple[float, float] = (1.0, 3.0),
        seed: int = 0,
        max_events: int = 5_000_000,
        fifo: bool = True,
    ) -> None:
        lo, hi = latency
        if lo < 0 or hi < lo:
            raise NetworkError(f"bad latency range {latency}")
        self.latency = latency
        self.rng = random.Random(seed)
        self.max_events = max_events
        self.fifo = fifo
        self.now = 0.0
        self.messages_sent = 0
        self.messages_by_kind: dict[str, int] = {}
        self._heap: list[_Delivery] = []
        self._seq = 0
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._last_delivery: dict[str, float] = {}

    # ------------------------------------------------------------------

    def register(self, name: str, handler: Callable[[Message], None]) -> None:
        if name in self._handlers:
            raise NetworkError(f"handler {name!r} already registered")
        self._handlers[name] = handler

    def send(
        self, target: str, message: Message, delay: float | None = None
    ) -> None:
        """Queue a message for delivery after the network latency (or an
        explicit ``delay``, e.g. a local retry timer).

        Latency-delivered messages ride per-target FIFO channels (a
        message never overtakes an earlier one to the same handler — undo
        must not race grant).  Explicit-delay messages are *timers*, not
        traffic: they skip the channel so a long backoff cannot freeze
        every later delivery to its target.
        """
        if target not in self._handlers:
            raise NetworkError(f"no handler registered for {target!r}")
        timer = delay is not None
        if delay is None:
            delay = self.rng.uniform(*self.latency)
        when = self.now + delay
        if self.fifo and not timer:
            when = max(when, self._last_delivery.get(target, 0.0) + 1e-9)
            self._last_delivery[target] = when
        self._seq += 1
        self.messages_sent += 1
        self.messages_by_kind[message.kind] = (
            self.messages_by_kind.get(message.kind, 0) + 1
        )
        heapq.heappush(
            self._heap,
            _Delivery(when, self._seq, target, message),
        )

    def run(self) -> float:
        """Deliver messages until the system quiesces; returns the final
        simulation time (the makespan)."""
        events = 0
        while self._heap:
            events += 1
            if events > self.max_events:
                raise NetworkError(
                    f"network exceeded {self.max_events} events; livelock?"
                )
            delivery = heapq.heappop(self._heap)
            self.now = delivery.time
            self._handlers[delivery.target](delivery.message)
        return self.now
