"""A discrete-event message network.

The distributed substrate runs on simulated time: messages carry a
delivery timestamp drawn from a configurable latency range, a global heap
orders deliveries, and handlers may send further messages.  "The total
order of the execution is determined by real clock time" (Section 6) maps
to simulation time with a deterministic tie-break.

With a :class:`~repro.distributed.faults.FaultPlan` attached the network
becomes an adversary: per-link message drop, duplication and reordering
(relaxed FIFO), timed partitions, and scheduled node crash/recover
events.  Fault decisions come from a dedicated RNG, so an *inactive*
plan (all rates zero, no crashes) is bit-identical to running with no
plan at all.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.distributed.faults import FaultPlan
from repro.errors import NetworkError
from repro.obs.profile import NULL_PROFILER, PhaseProfiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.obs.tracer import NULL_TRACER, Tracer

__all__ = ["Message", "Network"]

#: Internal heap target used for crash/recover control events.
_FAULT_TARGET = "__faults__"


@dataclass(frozen=True)
class Message:
    """One network message: a kind tag plus an arbitrary payload dict."""

    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass(order=True)
class _Delivery:
    time: float
    seq: int
    target: str = field(compare=False)
    message: Message = field(compare=False)


class Network:
    """Latency-simulating message bus between named handlers."""

    def __init__(
        self,
        latency: tuple[float, float] = (1.0, 3.0),
        seed: int = 0,
        max_events: int = 5_000_000,
        fifo: bool = True,
        faults: FaultPlan | None = None,
        tracer: Tracer | None = None,
        registry: MetricsRegistry | None = None,
        profiler: PhaseProfiler | None = None,
    ) -> None:
        lo, hi = latency
        if lo < 0 or hi < lo:
            raise NetworkError(f"bad latency range {latency}")
        self.latency = latency
        self.rng = random.Random(seed)
        # Flight recorder; events carry simulation time.  Emission never
        # touches ``rng``/``fault_rng``, so traced runs are identical.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Metrics plane: per-kind traffic counters and the ``network``
        # phase of handler execution.  Same invariance rule as tracing.
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        if self.registry.enabled:
            self._fam_sent = self.registry.counter(
                "repro_net_messages_total",
                help="Messages put on the wire, by kind.",
                labels=("kind",),
            )
            self._fam_recv = self.registry.counter(
                "repro_net_deliveries_total",
                help="Messages delivered to a handler, by node.",
                labels=("node",),
            )
        else:
            self._fam_sent = None
            self._fam_recv = None
        self.max_events = max_events
        self.fifo = fifo
        self.faults = faults
        #: Whether the at-least-once reliability protocol must be on.
        self.reliable = faults is not None and faults.active
        self.fault_rng = random.Random(faults.seed if faults else 0)
        self.now = 0.0
        # Real network traffic and local timers are counted separately:
        # a retry timer is not a message on the wire (experiment E7
        # reads per-kind counts as protocol overhead).
        self.messages_sent = 0
        self.messages_by_kind: dict[str, int] = {}
        self.timers_set = 0
        self.timers_by_kind: dict[str, int] = {}
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        self.messages_severed = 0
        self.drops_while_down = 0
        self.crashes_applied = 0
        self.down: set[str] = set()
        self._heap: list[_Delivery] = []
        self._seq = 0
        # Lifetime event count: persists across resumed run(until=...)
        # calls so the livelock valve covers the whole simulation.
        self._events = 0
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._crash_hooks: dict[str, tuple[Callable[[], None], Callable[[], None]]] = {}
        self._last_delivery: dict[str, float] = {}
        if faults is not None:
            for event in faults.crashes:
                self._push(event.at, _FAULT_TARGET,
                           Message("crash", {"node": event.node}))
                self._push(event.until, _FAULT_TARGET,
                           Message("recover", {"node": event.node}))

    # ------------------------------------------------------------------

    def register(self, name: str, handler: Callable[[Message], None]) -> None:
        if name in self._handlers:
            raise NetworkError(f"handler {name!r} already registered")
        self._handlers[name] = handler

    def register_crash_hooks(
        self,
        name: str,
        on_crash: Callable[[], None],
        on_recover: Callable[[], None],
    ) -> None:
        """Callbacks invoked when ``name`` crashes / recovers: the node
        uses them to wipe volatile state and replay its durable log."""
        self._crash_hooks[name] = (on_crash, on_recover)

    def _push(self, when: float, target: str, message: Message) -> None:
        self._seq += 1
        heapq.heappush(self._heap, _Delivery(when, self._seq, target, message))

    def send(
        self,
        target: str,
        message: Message,
        delay: float | None = None,
        source: str | None = None,
        timer: bool = False,
    ) -> None:
        """Queue a message for delivery after the network latency (or at
        an explicit ``delay``, e.g. a scheduled restart).

        Latency-delivered messages ride per-target FIFO channels (a
        message never overtakes an earlier one to the same handler — undo
        must not race grant); explicit-delay messages skip the channel so
        a long backoff cannot freeze every later delivery to its target.

        ``timer=True`` marks the message as a *local* timer (retry ticks,
        commit-check polls, retransmit alarms): timers are not network
        traffic, are counted separately, and are never touched by link
        faults — though they still die silently if their owner is down
        when they fire.
        """
        if target not in self._handlers:
            raise NetworkError(f"no handler registered for {target!r}")
        if timer:
            self.timers_set += 1
            self.timers_by_kind[message.kind] = (
                self.timers_by_kind.get(message.kind, 0) + 1
            )
            self._push(self.now + (delay or 0.0), target, message)
            return
        self.messages_sent += 1
        self.messages_by_kind[message.kind] = (
            self.messages_by_kind.get(message.kind, 0) + 1
        )
        if self._fam_sent is not None:
            self._fam_sent.labels(kind=message.kind).inc()
        tr = self.tracer
        if tr.enabled:
            tr.emit(
                "msg.send", self.now, kind=message.kind,
                source=source, target=target,
            )
        link = None
        if self.faults is not None and self.reliable:
            if self.faults.severed(source, target, self.now):
                self.messages_severed += 1
                if tr.enabled:
                    tr.emit(
                        "msg.sever", self.now, kind=message.kind,
                        source=source, target=target,
                    )
                return
            link = self.faults.link(source, target)
            if link.drop > 0 and self.fault_rng.random() < link.drop:
                self.messages_dropped += 1
                if tr.enabled:
                    tr.emit(
                        "msg.drop", self.now, kind=message.kind,
                        source=source, target=target,
                    )
                return
        if delay is not None:
            # Scheduled departure (e.g. a backed-off restart): the wire
            # time is part of the schedule, outside the FIFO channel.
            when = self.now + delay
        else:
            when = self.now + self.rng.uniform(*self.latency)
            reordered = (
                link is not None
                and link.reorder > 0
                and self.fault_rng.random() < link.reorder
            )
            if reordered:
                # Relaxed FIFO: this message escapes the channel and may
                # overtake earlier traffic to the same target.
                self.messages_reordered += 1
                when += self.fault_rng.uniform(0.0, link.reorder_jitter)
                if tr.enabled:
                    tr.emit(
                        "msg.reorder", self.now, kind=message.kind,
                        source=source, target=target, when=when,
                    )
            elif self.fifo:
                when = max(when, self._last_delivery.get(target, 0.0) + 1e-9)
                self._last_delivery[target] = when
        self._push(when, target, message)
        if (
            link is not None
            and link.duplicate > 0
            and self.fault_rng.random() < link.duplicate
        ):
            # A rogue copy with its own jitter, outside the FIFO channel.
            self.messages_duplicated += 1
            extra = when if delay is not None else (
                self.now + self.rng.uniform(*self.latency)
            )
            if link.reorder_jitter > 0:
                extra += self.fault_rng.uniform(0.0, link.reorder_jitter)
            self._push(extra, target, message)
            if tr.enabled:
                tr.emit(
                    "msg.dup", self.now, kind=message.kind,
                    source=source, target=target, when=extra,
                )

    # ------------------------------------------------------------------

    def _apply_fault_event(self, message: Message) -> None:
        node = message.payload["node"]
        if node not in self._handlers:
            raise NetworkError(f"crash event for unknown node {node!r}")
        hooks = self._crash_hooks.get(node)
        tr = self.tracer
        if message.kind == "crash":
            self.down.add(node)
            self.crashes_applied += 1
            if tr.enabled:
                tr.emit("node.crash", self.now, node=node)
            if hooks is not None:
                hooks[0]()
        else:
            self.down.discard(node)
            if tr.enabled:
                tr.emit("node.recover", self.now, node=node)
            if hooks is not None:
                hooks[1]()

    def run(self, until: float | None = None) -> float:
        """Deliver messages until the system quiesces; returns the final
        simulation time (the makespan).

        With ``until`` the drain stops once the next delivery lies past
        that simulation time, leaving it queued — the pump mode used by
        the live dashboard (``repro top --distributed``).  The event
        budget accumulates across resumed calls."""
        while self._heap:
            if until is not None and self._heap[0].time > until:
                break
            self._events += 1
            if self._events > self.max_events:
                raise NetworkError(
                    f"network exceeded {self.max_events} events; livelock?"
                )
            delivery = heapq.heappop(self._heap)
            self.now = delivery.time
            if delivery.target == _FAULT_TARGET:
                self._apply_fault_event(delivery.message)
                continue
            if delivery.target in self.down:
                # A crashed node neither receives traffic nor fires its
                # timers; both die silently while it is down.
                self.drops_while_down += 1
                tr = self.tracer
                if tr.enabled:
                    tr.emit(
                        "msg.lost-down", self.now,
                        kind=delivery.message.kind, target=delivery.target,
                    )
                continue
            tr = self.tracer
            if tr.enabled:
                tr.emit(
                    "msg.recv", self.now,
                    kind=delivery.message.kind, target=delivery.target,
                )
            if self._fam_recv is not None:
                self._fam_recv.labels(node=delivery.target).inc()
            pr = self.profiler
            if pr.enabled:
                with pr.phase("network"):
                    self._handlers[delivery.target](delivery.message)
            else:
                self._handlers[delivery.target](delivery.message)
        return self.now

    @property
    def idle(self) -> bool:
        """Whether the heap is fully drained (the system quiesced)."""
        return not self._heap

    def fault_summary(self) -> dict[str, int]:
        return {
            "dropped": self.messages_dropped,
            "duplicated": self.messages_duplicated,
            "reordered": self.messages_reordered,
            "severed": self.messages_severed,
            "lost_to_down_node": self.drops_while_down,
            "crashes": self.crashes_applied,
        }
