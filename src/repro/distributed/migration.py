"""Migrating transactions ([RSL], as used in Section 6).

A transaction originates at a processor and migrates from entity to
entity: conceptually the message ``(p, t, s)`` carries the transaction's
origin and automaton state to the processor owning the next entity.  In
this simulation the "state" is the live program generator, carried inside
message payloads — the honest simulation shortcut for state migration.
"""

from __future__ import annotations

from typing import Any

from repro.model.programs import TransactionProgram
from repro.model.steps import StepId, StepKind, StepRecord
from repro.model.system import _LiveTransaction
from repro.model.variables import EntityStore

__all__ = ["MigratingTransaction"]


class MigratingTransaction:
    """One attempt of a transaction travelling through the network."""

    def __init__(
        self, program: TransactionProgram, origin: str, attempt: int
    ) -> None:
        self.program = program
        self.origin = origin
        self.attempt = attempt
        self.live = _LiveTransaction(program)

    @property
    def name(self) -> str:
        return self.program.name

    @property
    def finished(self) -> bool:
        return self.live.finished

    @property
    def result(self) -> Any:
        return self.live.result

    @property
    def pending_entity(self) -> str | None:
        return self.live.pending.entity if self.live.pending else None

    @property
    def pending_kind(self) -> StepKind | None:
        return self.live.pending.kind if self.live.pending else None

    @property
    def steps_taken(self) -> int:
        return self.live.steps_taken

    @property
    def cut_levels(self) -> dict[int, int]:
        return dict(self.live.cut_levels)

    def next_step_id(self) -> StepId:
        return StepId(self.name, self.live.steps_taken)

    def perform(self, store: EntityStore) -> StepRecord:
        return self.live.perform(store)

    def __repr__(self) -> str:
        return (
            f"MigratingTransaction({self.name!r}@{self.attempt}, "
            f"origin={self.origin!r}, steps={self.steps_taken})"
        )
