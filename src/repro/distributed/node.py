"""Data nodes: processors owning a slice of the entities.

A node parks migrating transactions that arrive for one of its entities,
asks the sequencer for permission, performs granted steps on its local
store, and reports each performed step (shipping the transaction state
onward through the sequencer, which routes it to the next owner).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.distributed.migration import MigratingTransaction
from repro.distributed.network import Message, Network
from repro.errors import NetworkError
from repro.model.programs import TransactionProgram
from repro.model.variables import EntityStore

if TYPE_CHECKING:  # pragma: no cover
    pass

__all__ = ["DataNode"]


class DataNode:
    """One processor: local entities plus home transactions."""

    def __init__(
        self,
        name: str,
        network: Network,
        sequencer: str,
        entities: dict[str, object],
        home_programs: dict[str, TransactionProgram],
        entity_owner: dict[str, str],
        retry_delay: float = 2.0,
    ) -> None:
        self.name = name
        self.network = network
        self.sequencer = sequencer
        self.store = EntityStore(dict(entities))
        self.home_programs = dict(home_programs)
        # The placement catalog: every processor knows which node owns
        # which entity (how [RSL] transactions know where to migrate).
        self.entity_owner = dict(entity_owner)
        self.retry_delay = retry_delay
        self.parked: dict[str, MigratingTransaction] = {}
        network.register(name, self.handle)

    # ------------------------------------------------------------------

    def handle(self, message: Message) -> None:
        handler = getattr(self, f"_on_{message.kind.replace('-', '_')}", None)
        if handler is None:
            raise NetworkError(
                f"node {self.name!r} cannot handle {message.kind!r}"
            )
        handler(message.payload)

    # ------------------------------------------------------------------

    def _request(self, txn: MigratingTransaction) -> None:
        if txn.finished:
            self.network.send(
                self.sequencer,
                Message(
                    "performed",
                    {
                        "txn": txn,
                        "record": None,
                        "node": self.name,
                    },
                ),
            )
            return
        self.network.send(
            self.sequencer,
            Message(
                "request",
                {
                    "name": txn.name,
                    "attempt": txn.attempt,
                    "entity": txn.pending_entity,
                    "kind": txn.pending_kind,
                    "node": self.name,
                    "steps_taken": txn.steps_taken,
                    "cut_levels": txn.cut_levels,
                },
            ),
        )

    def _launch(self, txn: MigratingTransaction) -> None:
        """Park locally when we own the next entity (or the transaction
        is already finished); otherwise migrate to the owner."""
        entity = txn.pending_entity
        if entity is not None and entity not in self.store:
            self.network.send(
                self.entity_owner[entity], Message("migrate", {"txn": txn})
            )
            return
        self.parked[txn.name] = txn
        self._request(txn)

    def _on_start(self, payload: dict) -> None:
        name = payload["name"]
        attempt = payload.get("attempt", 0)
        program = self.home_programs[name]
        self._launch(MigratingTransaction(program, self.name, attempt))

    def _on_migrate(self, payload: dict) -> None:
        txn: MigratingTransaction = payload["txn"]
        if txn.pending_entity is not None and txn.pending_entity not in self.store:
            raise NetworkError(
                f"transaction {txn.name!r} migrated to {self.name!r} which "
                f"does not own {txn.pending_entity!r}"
            )
        self.parked[txn.name] = txn
        self._request(txn)

    def _on_grant(self, payload: dict) -> None:
        name = payload["name"]
        txn = self.parked.get(name)
        if txn is None or txn.attempt != payload["attempt"]:
            return  # stale grant for a rolled-back attempt
        del self.parked[name]
        record = txn.perform(self.store)
        # Ship the state onward through the sequencer, which updates its
        # global picture and routes the transaction to the next owner.
        self.network.send(
            self.sequencer,
            Message(
                "performed",
                {"txn": txn, "record": record, "node": self.name},
            ),
        )

    def _on_deny(self, payload: dict) -> None:
        name = payload["name"]
        txn = self.parked.get(name)
        if txn is None or txn.attempt != payload["attempt"]:
            return
        # Re-request after a local retry timer (each retry is a message).
        self.network.send(
            self.name,
            Message("retry", {"name": name, "attempt": txn.attempt}),
            delay=self.retry_delay,
        )

    def _on_retry(self, payload: dict) -> None:
        txn = self.parked.get(payload["name"])
        if txn is None or txn.attempt != payload["attempt"]:
            return
        self._request(txn)

    def _on_discard(self, payload: dict) -> None:
        txn = self.parked.get(payload["name"])
        if txn is not None and txn.attempt == payload["attempt"]:
            del self.parked[payload["name"]]

    def _on_undo(self, payload: dict) -> None:
        self.store.restore(payload["entity"], payload["value"])

    def _on_restart(self, payload: dict) -> None:
        program = self.home_programs[payload["name"]]
        self._launch(
            MigratingTransaction(program, self.name, payload["attempt"])
        )
