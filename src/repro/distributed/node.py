"""Data nodes: processors owning a slice of the entities.

A node parks migrating transactions that arrive for one of its entities,
asks the sequencer for permission, performs granted steps on its local
store, and reports each performed step (shipping the transaction state
onward through the sequencer, which routes it to the next owner).

Under a fault plan (``network.reliable``) the node speaks an
at-least-once protocol: every performed-report carries a per-node
sequence number (``psn``) and is retransmitted with capped exponential
backoff until the sequencer acknowledges it; grant/deny/discard/undo
handlers are idempotent behind dedup state; and a crash wipes volatile
state (parked transactions, timers, retransmit chains) while the entity
store and the write-ahead log — unacknowledged performed-reports plus
applied-undo ids — survive to be replayed on recovery.

With ``wal_path`` the log is real: each performed-report, its ack, and
each applied undo is appended to a framed, checksummed on-disk log (the
same record format as the engine WAL in :mod:`repro.durability.wal`).
A node reconstructed over an existing file replays the intact prefix —
a torn or corrupt tail record is truncated, exactly the engine's
torn-tail rule — and rebuilds ``psn``, the unacknowledged performed
tail (re-deriving each in-flight transaction from its program plus
logged access results), and the undo dedup set.
"""

from __future__ import annotations

from repro.distributed.migration import MigratingTransaction
from repro.distributed.network import Message, Network
from repro.errors import NetworkError
from repro.model.programs import TransactionProgram
from repro.model.steps import StepId, StepKind, StepRecord
from repro.model.variables import EntityStore
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry

__all__ = ["DataNode"]


class DataNode:
    """One processor: local entities plus home transactions."""

    def __init__(
        self,
        name: str,
        network: Network,
        sequencer: str,
        entities: dict[str, object],
        home_programs: dict[str, TransactionProgram],
        entity_owner: dict[str, str],
        retry_delay: float = 2.0,
        rexmit_delay: float = 4.0,
        registry: MetricsRegistry | None = None,
        wal_path: str | None = None,
        catalog: dict[str, TransactionProgram] | None = None,
    ) -> None:
        self.name = name
        self.network = network
        self.sequencer = sequencer
        # Each node owns a private registry (folded by the runtime via
        # ``MetricsRegistry.merge``, the distributed analogue of
        # ``Metrics.merge``); metric emission never touches any RNG.
        self.registry = registry if registry is not None else NULL_REGISTRY
        if self.registry.enabled:
            self._mx_parks = self.registry.counter(
                "repro_node_parks_total",
                help="Transactions parked awaiting a sequencer grant.",
                labels=("node",),
            ).labels(node=name)
            self._mx_performs = self.registry.counter(
                "repro_node_steps_performed_total",
                help="Steps performed against the local entity store.",
                labels=("node",),
            ).labels(node=name)
            self._mx_undos = self.registry.counter(
                "repro_node_undos_total",
                help="Before-images restored by sequencer-driven undo.",
                labels=("node",),
            ).labels(node=name)
        else:
            self._mx_parks = None
            self._mx_performs = None
            self._mx_undos = None
        self.store = EntityStore(dict(entities))
        self.home_programs = dict(home_programs)
        # The placement catalog: every processor knows which node owns
        # which entity (how [RSL] transactions know where to migrate).
        self.entity_owner = dict(entity_owner)
        self.retry_delay = retry_delay
        self.rexmit_delay = rexmit_delay
        self.rexmit_cap = rexmit_delay * 8
        self.reliable = network.reliable
        # Keyed by (name, attempt): under at-least-once delivery a stale
        # ghost of an old attempt may transiently coexist with the live
        # one, and the two must never collide in the parking lot.
        self.parked: dict[tuple[str, int], MigratingTransaction] = {}
        # --- volatile reliability state (lost on crash) ---
        self._req_epoch: dict[tuple[str, int], int] = {}
        self._migrate_seen: set[tuple[str, int, int]] = set()
        self._launched: set[tuple[str, int]] = set()
        self._route_unacked: dict[str, dict] = {}
        self._recover_pending: str | None = None
        self._uid_n = 0
        # --- durable state (survives crashes: the write-ahead log) ---
        self._psn = 0
        self._performed_unacked: dict[str, dict] = {}
        self._undo_applied: set[str] = set()
        self._crash_epoch = 0
        # The program catalog for WAL replay: a performed-report may
        # belong to a transaction homed on another node, so replay needs
        # every program, not just the home set.
        self._catalog = dict(catalog) if catalog else dict(home_programs)
        self._wal = None
        if wal_path is not None:
            from repro.durability.wal import LogFile, encode_record

            self._encode = encode_record
            self._wal = LogFile(wal_path)
            self._replay_wal()
        network.register(name, self.handle)
        network.register_crash_hooks(
            name, self._on_crash_event, self._on_recover_event
        )

    # ------------------------------------------------------------------

    def handle(self, message: Message) -> None:
        handler = getattr(self, f"_on_{message.kind.replace('-', '_')}", None)
        if handler is None:
            raise NetworkError(
                f"node {self.name!r} cannot handle {message.kind!r}"
            )
        handler(message.payload)

    def _uid(self) -> str:
        self._uid_n += 1
        return f"{self.name}/e{self._crash_epoch}#{self._uid_n}"

    def _rexmit(self, kind: str, info: dict, delay: float) -> None:
        self.network.send(
            self.name,
            Message(kind, {**info, "delay": delay}),
            delay=delay,
            timer=True,
        )

    def _next_delay(self, payload: dict) -> float:
        return min(payload["delay"] * 2.0, self.rexmit_cap)

    # ------------------------------------------------------------------
    # on-disk write-ahead log (shared framed/checksummed codec)
    # ------------------------------------------------------------------

    def _wal_append(self, record: dict) -> None:
        self._wal.append(self._encode(record))
        self._wal.sync()

    def _replay_wal(self) -> None:
        """Rebuild the durable state from the log's intact prefix.

        ``performed`` re-derives the in-flight transaction object by
        fast-forwarding a fresh instance of its program through the
        logged access results; ``performed-ack`` retires it; ``undo``
        re-arms the dedup set.  A torn tail was already truncated by
        :class:`repro.durability.wal.LogFile`.
        """
        epochs = [0]
        for record in self._wal.records():
            kind = record["t"]
            if kind == "performed":
                program = self._catalog.get(record["name"])
                if program is None:
                    raise NetworkError(
                        f"node {self.name!r} WAL names unknown program "
                        f"{record['name']!r}"
                    )
                txn = MigratingTransaction(
                    program, record["origin"], record["attempt"]
                )
                txn.live.fast_forward(record["results"])
                step = None
                if record["record"] is not None:
                    r = record["record"]
                    step = StepRecord(
                        StepId(record["name"], r["index"]),
                        r["entity"],
                        StepKind(r["kind"]),
                        r["before"],
                        r["after"],
                    )
                self._performed_unacked[record["uid"]] = {
                    "txn": txn,
                    "record": step,
                    "node": self.name,
                    "name": record["name"],
                    "attempt": record["attempt"],
                    "steps": record["steps"],
                    "cuts": dict(record["cuts"]),
                    "finished": record["finished"],
                    "epoch": record["epoch"],
                    "uid": record["uid"],
                    "psn": record["psn"],
                }
                self._psn = max(self._psn, record["psn"] + 1)
                epochs.append(record["epoch"])
            elif kind == "performed-ack":
                self._performed_unacked.pop(record["uid"], None)
            elif kind == "undo":
                self._undo_applied.add(record["uid"])
        # A reopened log means the previous incarnation is gone: start a
        # fresh epoch so new uids cannot collide with logged ones.
        self._crash_epoch = max(epochs) + 1 if self._wal.payloads else 0

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------

    def _on_crash_event(self) -> None:
        """Power loss: volatile state evaporates; the store and the
        write-ahead log (performed tail, undo dedup ids) persist."""
        self._crash_epoch += 1
        self._uid_n = 0
        self.parked.clear()
        self._req_epoch.clear()
        self._migrate_seen.clear()
        self._launched.clear()
        self._route_unacked.clear()
        self._recover_pending = None

    def _on_recover_event(self) -> None:
        """Reboot: announce the durable log tail to the sequencer so it
        can replay orphaned performed-reports through the cascade rule
        and restart whatever was parked here."""
        self._recover_pending = f"{self.name}/r{self._crash_epoch}"
        self._send_recovered()

    def _send_recovered(self, delay: float | None = None) -> None:
        tail = sorted(
            self._performed_unacked.values(), key=lambda p: p["psn"]
        )
        self.network.send(
            self.sequencer,
            Message(
                "recovered",
                {"node": self.name, "uid": self._recover_pending,
                 "tail": tail, "epoch": self._crash_epoch},
            ),
            source=self.name,
        )
        self._rexmit(
            "rexmit-recovered",
            {"uid": self._recover_pending},
            delay if delay is not None else self.rexmit_delay,
        )

    def _on_rexmit_recovered(self, payload: dict) -> None:
        if payload["uid"] != self._recover_pending:
            return
        self._send_recovered(self._next_delay(payload))

    def _on_recovered_ack(self, payload: dict) -> None:
        if payload["uid"] == self._recover_pending:
            self._recover_pending = None
        for uid in payload.get("performed_uids", ()):
            self._performed_unacked.pop(uid, None)

    # ------------------------------------------------------------------
    # outbound paths
    # ------------------------------------------------------------------

    def _request_payload(self, txn: MigratingTransaction) -> dict:
        return {
            "name": txn.name,
            "attempt": txn.attempt,
            "entity": txn.pending_entity,
            "kind": txn.pending_kind,
            "node": self.name,
            "steps_taken": txn.steps_taken,
            "cut_levels": txn.cut_levels,
            "epoch": self._crash_epoch,
        }

    def _request(self, txn: MigratingTransaction) -> None:
        if txn.finished:
            self._ship_performed(txn, None)
            return
        self.network.send(
            self.sequencer,
            Message("request", self._request_payload(txn)),
            source=self.name,
        )
        if self.reliable:
            key = (txn.name, txn.attempt)
            epoch = self._req_epoch.get(key, 0) + 1
            self._req_epoch[key] = epoch
            self._rexmit(
                "rexmit-request",
                {"name": txn.name, "attempt": txn.attempt, "epoch": epoch},
                self.rexmit_delay,
            )

    def _on_rexmit_request(self, payload: dict) -> None:
        key = (payload["name"], payload["attempt"])
        txn = self.parked.get(key)
        if txn is None or self._req_epoch.get(key) != payload["epoch"]:
            return  # answered, discarded, or superseded — chain dies
        self.network.send(
            self.sequencer,
            Message("request", self._request_payload(txn)),
            source=self.name,
        )
        self._rexmit(
            "rexmit-request",
            {"name": payload["name"], "attempt": payload["attempt"],
             "epoch": payload["epoch"]},
            self._next_delay(payload),
        )

    def _ship_performed(self, txn: MigratingTransaction, record) -> None:
        # Scalar state is snapshotted at perform time: the transaction
        # object is shared by reference across the simulation, so a
        # retransmitted report must describe the step as it was, not as
        # the object has since advanced.
        payload = {
            "txn": txn,
            "record": record,
            "node": self.name,
            "name": txn.name,
            "attempt": txn.attempt,
            "steps": txn.steps_taken,
            "cuts": txn.cut_levels,
            "finished": txn.finished,
            "epoch": self._crash_epoch,
        }
        if self.reliable:
            uid = self._uid()
            payload["uid"] = uid
            payload["psn"] = self._psn
            self._psn += 1
            self._performed_unacked[uid] = payload
            if self._wal is not None:
                self._wal_append({
                    "t": "performed",
                    "uid": uid,
                    "psn": payload["psn"],
                    "name": txn.name,
                    "origin": txn.origin,
                    "attempt": txn.attempt,
                    "steps": txn.steps_taken,
                    "cuts": txn.cut_levels,
                    "finished": txn.finished,
                    "epoch": self._crash_epoch,
                    "results": list(txn.live.results_log),
                    "record": (
                        None if record is None else {
                            "index": record.step.index,
                            "entity": record.entity,
                            "kind": record.kind.value,
                            "before": record.value_before,
                            "after": record.value_after,
                        }
                    ),
                })
            self._rexmit("rexmit-performed", {"uid": uid}, self.rexmit_delay)
        self.network.send(
            self.sequencer, Message("performed", payload), source=self.name
        )

    def _on_rexmit_performed(self, payload: dict) -> None:
        stored = self._performed_unacked.get(payload["uid"])
        if stored is None:
            return
        self.network.send(
            self.sequencer, Message("performed", stored), source=self.name
        )
        self._rexmit(
            "rexmit-performed",
            {"uid": payload["uid"]},
            self._next_delay(payload),
        )

    def _on_performed_ack(self, payload: dict) -> None:
        if (
            self._wal is not None
            and payload["uid"] in self._performed_unacked
        ):
            self._wal_append({"t": "performed-ack", "uid": payload["uid"]})
        self._performed_unacked.pop(payload["uid"], None)

    def _launch(self, txn: MigratingTransaction) -> None:
        """Park locally when we own the next entity (or the transaction
        is already finished); otherwise migrate to the owner."""
        entity = txn.pending_entity
        if entity is not None and entity not in self.store:
            if self.reliable:
                # Route through the sequencer so its location catalog
                # stays authoritative (ghost requests from duplicated
                # migrations are rejected against it).
                uid = self._uid()
                payload = {
                    "txn": txn,
                    "name": txn.name,
                    "attempt": txn.attempt,
                    "steps": txn.steps_taken,
                    "node": self.name,
                    "uid": uid,
                    "epoch": self._crash_epoch,
                }
                self._route_unacked[uid] = payload
                self.network.send(
                    self.sequencer, Message("route", payload), source=self.name
                )
                self._rexmit("rexmit-route", {"uid": uid}, self.rexmit_delay)
            else:
                self.network.send(
                    self.entity_owner[entity],
                    Message("migrate", {"txn": txn}),
                    source=self.name,
                )
            return
        self.parked[(txn.name, txn.attempt)] = txn
        if self._mx_parks is not None:
            self._mx_parks.inc()
        tr = self.network.tracer
        if tr.enabled:
            tr.emit(
                "node.park",
                self.network.now,
                node=self.name,
                txn=txn.name,
                attempt=txn.attempt,
                entity=txn.pending_entity,
            )
        self._request(txn)

    def _on_rexmit_route(self, payload: dict) -> None:
        stored = self._route_unacked.get(payload["uid"])
        if stored is None:
            return
        self.network.send(
            self.sequencer, Message("route", stored), source=self.name
        )
        self._rexmit(
            "rexmit-route", {"uid": payload["uid"]}, self._next_delay(payload)
        )

    def _on_route_ack(self, payload: dict) -> None:
        self._route_unacked.pop(payload["uid"], None)

    # ------------------------------------------------------------------
    # inbound handlers
    # ------------------------------------------------------------------

    def _on_start(self, payload: dict) -> None:
        name = payload["name"]
        attempt = payload.get("attempt", 0)
        program = self.home_programs[name]
        self._launch(MigratingTransaction(program, self.name, attempt))

    def _on_restart(self, payload: dict) -> None:
        name, attempt = payload["name"], payload["attempt"]
        if self.reliable:
            if "uid" in payload:
                self.network.send(
                    self.sequencer,
                    Message("restart-ack", {"uid": payload["uid"]}),
                    source=self.name,
                )
            if (name, attempt) in self._launched:
                return  # duplicate restart: the attempt is already live
            self._launched.add((name, attempt))
        program = self.home_programs[name]
        self._launch(MigratingTransaction(program, self.name, attempt))

    def _on_migrate(self, payload: dict) -> None:
        txn: MigratingTransaction = payload["txn"]
        name = payload.get("name", txn.name)
        attempt = payload.get("attempt", txn.attempt)
        steps = payload.get("steps", txn.steps_taken)
        if self.reliable and "uid" in payload:
            self.network.send(
                self.sequencer,
                Message("migrate-ack", {"uid": payload["uid"]}),
                source=self.name,
            )
        key3 = (name, attempt, steps)
        if key3 in self._migrate_seen:
            return
        self._migrate_seen.add(key3)
        if self.reliable and txn.steps_taken != steps:
            # A late copy: the (shared) transaction object has advanced
            # past the state this message described.  Ignore it.
            return
        if txn.pending_entity is not None and txn.pending_entity not in self.store:
            if self.reliable:
                return  # stale ghost addressed by an outdated placement
            raise NetworkError(
                f"transaction {txn.name!r} migrated to {self.name!r} which "
                f"does not own {txn.pending_entity!r}"
            )
        self.parked[(name, attempt)] = txn
        self._request(txn)

    def _on_grant(self, payload: dict) -> None:
        key = (payload["name"], payload["attempt"])
        txn = self.parked.get(key)
        if txn is None:
            return  # stale grant for a rolled-back or moved-on attempt
        if "steps" in payload and payload["steps"] != txn.steps_taken:
            return  # duplicate grant for an earlier step of this attempt
        del self.parked[key]
        self._req_epoch.pop(key, None)
        record = txn.perform(self.store)
        if self._mx_performs is not None:
            self._mx_performs.inc()
        tr = self.network.tracer
        if tr.enabled:
            tr.emit(
                "step.perform",
                self.network.now,
                txn=txn.name,
                attempt=txn.attempt,
                step=record.step.index,
                entity=record.entity,
                kind=record.kind.value,
                node=self.name,
                before=record.value_before,
                after=record.value_after,
            )
        # Ship the state onward through the sequencer, which updates its
        # global picture and routes the transaction to the next owner.
        self._ship_performed(txn, record)

    def _on_deny(self, payload: dict) -> None:
        key = (payload["name"], payload["attempt"])
        txn = self.parked.get(key)
        if txn is None:
            return
        if "steps" in payload and payload["steps"] != txn.steps_taken:
            return
        if self.reliable:
            # Invalidate the request retransmit chain; the retry below
            # will open a fresh one.
            self._req_epoch[key] = self._req_epoch.get(key, 0) + 1
        # Re-request after a local retry timer (not network traffic).
        self.network.send(
            self.name,
            Message("retry", {"name": payload["name"],
                              "attempt": payload["attempt"]}),
            delay=self.retry_delay,
            timer=True,
        )

    def _on_retry(self, payload: dict) -> None:
        txn = self.parked.get((payload["name"], payload["attempt"]))
        if txn is None:
            return
        self._request(txn)

    def _on_discard(self, payload: dict) -> None:
        key = (payload["name"], payload["attempt"])
        txn = self.parked.get(key)
        if txn is None:
            return
        if "steps" in payload and payload["steps"] != txn.steps_taken:
            return  # ghost-discard aimed at a state we are no longer in
        del self.parked[key]
        self._req_epoch.pop(key, None)

    def _on_undo(self, payload: dict) -> None:
        if self.reliable and "uid" in payload:
            self.network.send(
                self.sequencer,
                Message("undo-ack", {"uid": payload["uid"],
                                     "node": self.name}),
                source=self.name,
            )
            if payload["uid"] in self._undo_applied:
                return  # duplicate undo: already applied (durably logged)
            if self._wal is not None:
                self._wal_append({
                    "t": "undo",
                    "uid": payload["uid"],
                    "entity": payload["entity"],
                    "value": payload["value"],
                })
            self._undo_applied.add(payload["uid"])
        self.store.restore(payload["entity"], payload["value"])
        if self._mx_undos is not None:
            self._mx_undos.inc()
        tr = self.network.tracer
        if tr.enabled:
            tr.emit(
                "step.undo",
                self.network.now,
                node=self.name,
                entity=payload["entity"],
                restored=payload["value"],
            )
