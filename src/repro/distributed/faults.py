"""Seeded fault policies for the simulated network (experiment E14).

The perfect-network assumption of the Section 6 substrate — exactly-once
delivery, FIFO links, immortal nodes — is exactly what real migrating-
transaction systems cannot have.  A :class:`FaultPlan` describes the
adversary: per-link message drop, duplication and reordering (relaxed
FIFO), timed link partitions, and node crash/recover events scheduled on
simulation time.  All fault decisions are drawn from a dedicated RNG
(``seed``), so a faulty run is reproducible and independent of the
latency RNG: a plan whose every rate is zero and whose crash list is
empty is *inactive* and leaves the network bit-identical to a run with
no plan at all.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.errors import NetworkError

__all__ = ["LinkFaults", "CrashEvent", "Partition", "FaultPlan"]


@dataclass(frozen=True)
class LinkFaults:
    """Per-link fault rates.

    ``drop``/``duplicate``/``reorder`` are per-message probabilities; a
    reordered message escapes the per-target FIFO channel and picks up
    extra delivery jitter drawn uniformly from ``[0, reorder_jitter]``.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_jitter: float = 8.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise NetworkError(f"{name} rate {rate} outside [0, 1]")
        if self.reorder_jitter < 0:
            raise NetworkError(f"negative reorder jitter {self.reorder_jitter}")

    @property
    def active(self) -> bool:
        return self.drop > 0 or self.duplicate > 0 or self.reorder > 0


@dataclass(frozen=True)
class CrashEvent:
    """Node ``node`` crashes at simulation time ``at`` and recovers
    ``duration`` later.  Volatile state (parked transactions, timers,
    retransmit chains) is lost; the entity store and the write-ahead
    log (unacknowledged performed-reports, applied-undo ids) survive."""

    node: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise NetworkError(
                f"bad crash window at={self.at} duration={self.duration}"
            )

    @property
    def until(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class Partition:
    """Both directions of the ``(a, b)`` link drop every message during
    ``[at, at + duration)`` — a timed network partition."""

    a: str
    b: str
    at: float
    duration: float

    def __post_init__(self) -> None:
        if self.at < 0 or self.duration <= 0:
            raise NetworkError(
                f"bad partition window at={self.at} duration={self.duration}"
            )

    @property
    def until(self) -> float:
        return self.at + self.duration

    def severs(self, src: str | None, dst: str, now: float) -> bool:
        if not self.at <= now < self.until:
            return False
        return {src, dst} == {self.a, self.b}


@dataclass(frozen=True)
class FaultPlan:
    """The full adversary for one run.

    ``default`` applies to every link unless ``links`` carries a more
    specific policy; link keys are ``(source, target)`` names with ``"*"``
    as a wildcard on either side.  Local timers (messages a handler
    schedules to itself with an explicit delay) are *not* network traffic
    and are never subjected to link faults — though a crashed node's
    timers die with it.
    """

    default: LinkFaults = field(default_factory=LinkFaults)
    links: Mapping[tuple[str, str], LinkFaults] = field(default_factory=dict)
    crashes: tuple[CrashEvent, ...] = ()
    partitions: tuple[Partition, ...] = ()
    seed: int = 0

    @property
    def active(self) -> bool:
        """Whether the plan can perturb a run at all.  Inactive plans
        keep the runtime on its exactly-once fast path."""
        return (
            self.default.active
            or any(link.active for link in self.links.values())
            or bool(self.crashes)
            or bool(self.partitions)
        )

    def link(self, src: str | None, dst: str) -> LinkFaults:
        """The policy governing one ``src -> dst`` message."""
        if self.links:
            for key in ((src, dst), (src, "*"), ("*", dst)):
                policy = self.links.get(key)  # type: ignore[arg-type]
                if policy is not None:
                    return policy
        return self.default

    def severed(self, src: str | None, dst: str, now: float) -> bool:
        return any(p.severs(src, dst, now) for p in self.partitions)
