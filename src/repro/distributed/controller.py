"""The sequencer (validator) and the distributed runtime.

The application database is a *logically centralised* object (Section 3);
this runtime implements it physically distributed in the [RSL] migrating-
transaction style, with one asymmetry that real early distributed DBMS
designs shared: a **sequencer** node owns the concurrency-control state.
Data nodes ask it for per-step permission, so every admission policy of
the single-site engine has a distributed counterpart that pays message
latency for each decision — exactly the overhead experiment E7 measures.

Controls:

* :class:`NoControl` — grant everything (the contrast case).
* :class:`DistributedLockControl` — strict exclusive locking at the
  sequencer (distributed 2PL under the paper's all-access conflicts).
* :class:`DistributedPreventControl` — Section 6 cycle prevention: a step
  is granted only when every transaction whose last performed step would
  precede it in the coherent closure sits at a breakpoint of the
  appropriate level.

Rollback is sequencer-driven: it computes the cascade over its global
log, sends ``undo`` messages to the owning nodes (per-target FIFO
channels make undo/grant races impossible) and restarts victims at their
origin after a backoff.
"""

from __future__ import annotations

import os
import random
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro.core.interleaving import InterleavingSpec
from repro.core.nests import KNest
from repro.distributed.faults import FaultPlan
from repro.distributed.migration import MigratingTransaction
from repro.distributed.network import Message, Network
from repro.distributed.node import DataNode
from repro.engine.closure_window import ClosureWindow
from repro.engine.locks import LockManager, LockMode
from repro.engine.rollback import cascade_closure, undo_plan
from repro.errors import NetworkError
from repro.model.breakpoints import spec_for_execution
from repro.obs.profile import NULL_PROFILER, PhaseProfiler
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.model.execution import Execution
from repro.model.programs import TransactionProgram
from repro.model.steps import StepId, StepRecord

__all__ = [
    "NoControl",
    "DistributedLockControl",
    "DistributedPreventControl",
    "Sequencer",
    "DistributedResult",
    "DistributedRuntime",
]


# ---------------------------------------------------------------------------
# controls
# ---------------------------------------------------------------------------


class NoControl:
    """Grant every request immediately."""

    name = "none"

    def attach(self, sequencer: "Sequencer") -> None:
        self.sequencer = sequencer

    def decide(self, request: dict):
        return "grant"

    def on_performed(self, name: str, record: StepRecord | None,
                     cut_levels: dict[int, int], finished: bool) -> None:
        pass

    def certify_commit(self, name: str) -> list[str] | None:
        """Victims to roll back instead of committing, or None when the
        commit is safe.  Controls with a closure window must never let a
        transaction commit while the window is cyclic (see
        repro.engine.schedulers._certify for the failure mode)."""
        return None

    def on_commit(self, name: str) -> None:
        pass

    def on_abort(self, name: str) -> None:
        pass


class DistributedLockControl(NoControl):
    """Strict sequencer-side locking: every access takes an exclusive
    entity lock held to commit; waits-for cycles abort the youngest."""

    name = "2pl"

    def __init__(self) -> None:
        self.locks = LockManager()

    def decide(self, request: dict):
        name = request["name"]
        if self.locks.try_acquire(name, request["entity"], LockMode.EXCLUSIVE):
            return "grant"
        cycle = self.locks.deadlock_cycle()
        if cycle:
            victim = max(cycle, key=self.sequencer.priority_key)
            return ("abort", [victim])
        return "wait"

    def on_commit(self, name: str) -> None:
        self.locks.release_all(name)

    def on_abort(self, name: str) -> None:
        self.locks.release_all(name)


class DistributedPreventControl(NoControl):
    """Section 6 cycle prevention at the sequencer."""

    name = "mla-prevent"

    def __init__(self, nest: KNest, conflicts: str = "all",
                 mode: str = "incremental") -> None:
        self.nest = nest
        self.window = ClosureWindow(nest, mode=mode, conflicts=conflicts)

    def attach(self, sequencer: "Sequencer") -> None:
        super().attach(sequencer)
        self.window.tracer = sequencer.network.tracer
        self.window.clock = lambda: sequencer.network.now
        self.window.profiler = sequencer.profiler

    def _at_breakpoint(self, name: str, level: int) -> bool:
        seq = self.sequencer
        state = seq.progress.get(name)
        if state is None or state["steps"] == 0 or state["finished"]:
            return True
        declared = state["cuts"].get(state["steps"] - 1)
        return declared is not None and declared <= level

    def decide(self, request: dict):
        seq = self.sequencer
        name = request["name"]
        step = StepId(name, request["steps_taken"])
        # The window must know the requester's latest breakpoints for the
        # hypothetical prefix description.
        self.window._cuts[name] = {
            g: lv
            for g, lv in request["cut_levels"].items()
        }
        acyclic, predecessors, cycle_owners = self.window.hypothetical(
            name, step, request["entity"], request["kind"]
        )
        if not acyclic:
            blockers = {
                owner
                for owner in cycle_owners
                if owner != name and owner not in seq.committed_names
            }
            return self._wait_or_break(name, blockers or None)
        blockers = set()
        for other, state in seq.progress.items():
            if other == name or other in seq.committed_names:
                continue
            last = self.window.last_step_of(other)
            if last is None or last not in predecessors:
                continue
            if not self._at_breakpoint(other, self.nest.level(other, name)):
                blockers.add(other)
        if blockers:
            seq.waiting_on[name] = blockers
            return self._wait_or_break(name, blockers)
        seq.waiting_on.pop(name, None)
        return "grant"

    def _wait_or_break(self, name: str, blockers: set[str] | None = None):
        seq = self.sequencer
        if not blockers:
            blockers = {
                other
                for other in seq.progress
                if other != name and other not in seq.committed_names
            }
        if not blockers:
            # Nothing live to wait for: the conflict is against committed
            # history, so this attempt's own prefix is unextendable.
            # Roll it back and let a fresh attempt run behind the
            # committed work.
            return ("abort", [name])
        # Every wait must be visible to the deadlock check, whatever its
        # cause (breakpoint blocker or would-be closure cycle).
        seq.waiting_on[name] = blockers
        graph = nx.DiGraph()
        for waiter, blocking in seq.waiting_on.items():
            # Sorted: edge insertion order decides which cycle
            # ``find_cycle`` surfaces (hence the victim), and raw set
            # order varies with the process hash seed.
            for blocker in sorted(blocking):
                graph.add_edge(waiter, blocker)
        try:
            cycle = [u for u, _ in nx.find_cycle(graph)]
        except nx.NetworkXNoCycle:
            return "wait"
        victim = max(cycle, key=seq.priority_key)
        return ("abort", [victim])

    def on_performed(self, name, record, cut_levels, finished) -> None:
        if record is not None:
            self.window.observe(
                name, record.step, record.entity, record.kind, cut_levels
            )

    def certify_commit(self, name: str) -> list[str] | None:
        result = self.window._closure()
        if result is None or result.is_partial_order:
            return None
        seq = self.sequencer
        owners = {
            step.transaction
            for step in result.cycle or ()
            if step.transaction not in seq.committed_names
            and step.transaction in seq.attempts
        }
        if not owners:
            owners = {
                other
                for other in seq.progress
                if other not in seq.committed_names
            }
        if not owners:
            return [name]
        return [max(owners, key=seq.priority_key)]

    def on_commit(self, name: str) -> None:
        self.sequencer.waiting_on.pop(name, None)
        self.window.mark_committed(name)

    def on_abort(self, name: str) -> None:
        self.sequencer.waiting_on.pop(name, None)
        self.window.drop(name)


# ---------------------------------------------------------------------------
# the sequencer
# ---------------------------------------------------------------------------


class Sequencer:
    """The concurrency-control brain of the distributed runtime."""

    def __init__(
        self,
        name: str,
        network: Network,
        control,
        entity_owner: Mapping[str, str],
        origins: Mapping[str, str],
        arrivals: Mapping[str, float],
        backoff: float = 6.0,
        commit_retry: float = 2.0,
        rexmit_delay: float = 4.0,
        registry: MetricsRegistry | None = None,
        profiler: PhaseProfiler | None = None,
    ) -> None:
        self.name = name
        self.network = network
        self.control = control
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        if self.registry.enabled:
            def _c(metric: str, help: str):
                return self.registry.counter(
                    metric, help=help, labels=("control",),
                ).labels(control=control.name)
            self._mx = {
                "grants": _c("repro_seq_grants_total",
                             "Step permissions granted."),
                "denies": _c("repro_seq_denies_total",
                             "Step permissions denied (wait or quiesce)."),
                "commits": _c("repro_seq_commits_total",
                              "Transactions committed by the sequencer."),
                "aborts": _c("repro_seq_aborts_total",
                             "Attempts rolled back (cascade included)."),
                "deadlocks": _c("repro_seq_deadlocks_total",
                                "Circular waits or certification failures."),
                "recoveries": _c("repro_seq_recoveries_total",
                                 "Node crash recoveries reconciled."),
            }
        else:
            self._mx = None
        self.entity_owner = dict(entity_owner)
        self.origins = dict(origins)
        self.arrivals = dict(arrivals)
        self.backoff = backoff
        self.commit_retry = commit_retry
        self.rexmit_delay = rexmit_delay
        self.rexmit_cap = rexmit_delay * 8
        self.reliable = network.reliable

        self.attempts: dict[str, int] = {t: 0 for t in origins}
        self.locations: dict[str, str] = {}
        self.progress: dict[str, dict] = {}
        self.log: list[tuple[tuple[str, int], StepRecord]] = []
        self.last_writer: dict[str, tuple[str, int]] = {}
        self.deps: dict[tuple[str, int], set[tuple[str, int]]] = {}
        self.committed: set[tuple[str, int]] = set()
        self.committed_names: set[str] = set()
        self.pending_commit: dict[str, MigratingTransaction] = {}
        self.waiting_on: dict[str, set[str]] = {}
        self.results: dict[str, Any] = {}
        self.final_cut_levels: dict[str, dict[int, int]] = {}
        # Grants sent whose performed-report has not come back yet, and
        # transactions condemned to roll back once the pipeline drains.
        self.outstanding: set[str] = set()
        self.doomed: set[str] = set()
        self.commits = 0
        self.aborts = 0
        self.deadlocks = 0
        self.recoveries = 0
        # --- at-least-once protocol state (active under a fault plan) ---
        # Last grant per transaction, so a lost grant can be re-issued
        # verbatim when the request is retransmitted.
        self._granted: dict[str, tuple[int, int]] = {}
        # Per-node performed-sequence-number gating: reports are consumed
        # strictly in each node's perform order, with out-of-order
        # arrivals parked in a buffer — relaxed FIFO must not let a later
        # report rewrite per-entity log order (cascade correctness).
        self._next_psn: dict[str, int] = {}
        self._psn_buffer: dict[str, dict[int, dict]] = {}
        # Reliable sends awaiting acknowledgement: uid -> (kind, target,
        # payload); undo uids are tracked separately as the rollback
        # barrier (no restart may leave before every undo is applied).
        self._pending: dict[str, tuple[str, str, dict]] = {}
        self._undo_outstanding: set[str] = set()
        self._deferred_restarts: list[str] = []
        self._route_seen: set[tuple[str, int, int]] = set()
        self._recovered_seen: set[str] = set()
        # Highest reconciled crash epoch per node.  A message stamped
        # with a later epoch comes from a reincarnation whose recovery
        # has not been processed yet; engaging with it (e.g. granting a
        # step) before the recovery rollback runs would let performed
        # work escape the cascade.  Such messages are ignored — their
        # retransmit chains re-deliver them after reconciliation.
        self._node_epoch: dict[str, int] = {}
        self._uid_n = 0

        network.register(name, self.handle)
        control.attach(self)

    # ------------------------------------------------------------------

    def priority_key(self, name: str):
        """Victims are chosen youngest-first (max key)."""
        return (self.arrivals.get(name, 0.0), name)

    def handle(self, message: Message) -> None:
        handler = getattr(self, f"_on_{message.kind.replace('-', '_')}", None)
        if handler is None:
            raise NetworkError(f"sequencer cannot handle {message.kind!r}")
        handler(message.payload)

    # ------------------------------------------------------------------

    def _uid(self) -> str:
        self._uid_n += 1
        return f"seq#{self._uid_n}"

    def _unreconciled(self, payload: dict) -> bool:
        node = payload.get("node")
        if node is None:
            return False
        return payload.get("epoch", 0) > self._node_epoch.get(node, 0)

    def _send_grant(self, node: str, name: str, attempt: int, steps: int) -> None:
        self.outstanding.add(name)
        self._granted[name] = (attempt, steps)
        if self._mx is not None:
            self._mx["grants"].inc()
        tr = self.network.tracer
        if tr.enabled:
            tr.emit(
                "seq.grant", self.network.now,
                txn=name, attempt=attempt, step=steps, node=node,
            )
        self.network.send(
            node,
            Message("grant", {"name": name, "attempt": attempt,
                              "steps": steps}),
            source=self.name,
        )

    def _send_deny(self, node: str, name: str, attempt: int, steps: int) -> None:
        if self._mx is not None:
            self._mx["denies"].inc()
        tr = self.network.tracer
        if tr.enabled:
            tr.emit(
                "seq.deny", self.network.now,
                txn=name, attempt=attempt, step=steps, node=node,
            )
        self.network.send(
            node,
            Message("deny", {"name": name, "attempt": attempt,
                             "steps": steps}),
            source=self.name,
        )

    def _on_request(self, payload: dict) -> None:
        name = payload["name"]
        attempt = payload["attempt"]
        steps = payload["steps_taken"]
        node = payload["node"]
        if attempt != self.attempts[name]:
            self.network.send(
                node,
                Message("discard", {"name": name, "attempt": attempt}),
                source=self.name,
            )
            return
        if self.reliable:
            if self._unreconciled(payload):
                return  # the node rebooted; wait for its recovery report
            # The location catalog is authoritative: a request from any
            # other node is a ghost park left by a duplicated migration.
            expected = self.locations.get(name)
            if expected is not None and expected != node:
                self.network.send(
                    node,
                    Message("discard", {"name": name, "attempt": attempt,
                                        "steps": steps}),
                    source=self.name,
                )
                return
            state = self.progress.get(name)
            if state is not None and steps < state["steps"]:
                return  # stale retransmit of an already-performed step
            if name in self.outstanding and self._granted.get(name) == (
                attempt, steps,
            ):
                # The grant (or its report) is in flight or was lost;
                # re-issuing it verbatim is idempotent at the node.
                self._send_grant(node, name, attempt, steps)
                return
        else:
            self.locations[name] = node
        if self.doomed or self._undo_outstanding:
            # A rollback is waiting for in-flight steps to drain (or for
            # its undo barrier); quiesce new grants so the cascade is
            # computed over a stable log and no step overtakes an undo.
            self._send_deny(node, name, attempt, steps)
            return
        pr = self.profiler
        if pr.enabled:
            with pr.phase("schedule"):
                decision = self.control.decide(payload)
        else:
            decision = self.control.decide(payload)
        if decision == "grant":
            self._send_grant(node, name, attempt, steps)
        elif decision == "wait":
            self._send_deny(node, name, attempt, steps)
        else:
            _tag, victims = decision
            self.deadlocks += 1
            if self._mx is not None:
                self._mx["deadlocks"].inc()
            self._abort(victims)
            if name not in victims:
                self._send_deny(node, name, attempt, steps)

    def _on_performed(self, payload: dict) -> None:
        if not self.reliable:
            self._consume_performed(payload)
            return
        if self._unreconciled(payload):
            # Must not acknowledge either: the ack would pop the report
            # from the node's durable tail while we discard its content.
            return
        if "uid" in payload:
            self.network.send(
                payload["node"],
                Message("performed-ack", {"uid": payload["uid"]}),
                source=self.name,
            )
        self._ingest_performed(payload)

    def _ingest_performed(self, payload: dict) -> None:
        """Admit a report through the per-node psn gate: reports are
        consumed strictly in each node's perform order, so relaxed FIFO
        can never rewrite per-entity log order (which the cascade and
        undo plan both depend on).  Every performed psn is either acked
        (consumed or buffered here) or still in its node's durable tail,
        so the gate can never deadlock on a hole."""
        node, psn = payload["node"], payload["psn"]
        next_psn = self._next_psn.get(node, 0)
        if psn < next_psn:
            return  # duplicate of an already-consumed report
        if psn > next_psn:
            self._psn_buffer.setdefault(node, {})[psn] = payload
            return
        self._consume_performed(payload)
        next_psn += 1
        buffered = self._psn_buffer.get(node, {})
        while next_psn in buffered:
            self._consume_performed(buffered.pop(next_psn))
            next_psn += 1
        self._next_psn[node] = next_psn

    def _consume_performed(self, payload: dict) -> None:
        txn: MigratingTransaction = payload["txn"]
        # Scalar state is snapshotted into the payload at perform time:
        # the transaction object is shared by reference and may have
        # advanced by the time a retransmitted report is consumed.
        name = payload.get("name", txn.name)
        attempt = payload.get("attempt", txn.attempt)
        steps = payload.get("steps", txn.steps_taken)
        cuts = payload["cuts"] if "cuts" in payload else txn.cut_levels
        finished = payload.get("finished", txn.finished)
        replay = payload.get("_replay", False)
        if attempt != self.attempts[name]:
            if not self.reliable:
                # Deferred-abort protocol: an abort never executes while
                # a grant is outstanding, so stale reports cannot occur.
                raise NetworkError(
                    f"stale performed-report for {name!r} attempt {attempt}"
                )
            return  # a rollback already claimed this attempt
        if name in self.committed_names:
            return
        self.outstanding.discard(name)
        self._granted.pop(name, None)
        key = (name, attempt)
        record: StepRecord | None = payload["record"]
        if record is not None:
            writer = self.last_writer.get(record.entity)
            if writer is not None and writer != key:
                self.deps.setdefault(key, set()).add(writer)
            self.log.append((key, record))
            if not record.is_read_only:
                self.last_writer[record.entity] = key
        self.progress[name] = {
            "steps": steps,
            "cuts": cuts,
            "finished": finished,
        }
        self.control.on_performed(name, record, cuts, finished)
        self._process_doomed()
        if attempt != self.attempts[name]:
            return  # the deferred rollback just claimed this transaction
        if finished:
            self.pending_commit[name] = txn
            self._commit_check(name)
        elif not replay:
            # A replayed orphan (crash-recovery tail) is never forwarded:
            # its generator state died with the node; the cascade rule
            # will restart the attempt from its origin.
            target = self.entity_owner[txn.pending_entity]
            self.locations[name] = target
            self._forward_migrate(target, txn, name, attempt, steps)

    def _forward_migrate(
        self,
        target: str,
        txn: MigratingTransaction,
        name: str,
        attempt: int,
        steps: int,
    ) -> None:
        payload: dict = {
            "txn": txn, "name": name, "attempt": attempt, "steps": steps,
        }
        if self.reliable:
            uid = self._uid()
            payload["uid"] = uid
            self._pending[uid] = ("migrate", target, payload)
            self._schedule_rexmit(uid, self.rexmit_delay)
        self.network.send(target, Message("migrate", payload), source=self.name)

    # ------------------------------------------------------------------
    # at-least-once machinery (retransmits, routing, crash recovery)
    # ------------------------------------------------------------------

    def _schedule_rexmit(self, uid: str, delay: float) -> None:
        self.network.send(
            self.name,
            Message("rexmit", {"uid": uid, "delay": delay}),
            delay=delay,
            timer=True,
        )

    def _on_rexmit(self, payload: dict) -> None:
        uid = payload["uid"]
        entry = self._pending.get(uid)
        if entry is None:
            return  # acknowledged — chain dies
        kind, target, msg_payload = entry
        if kind in ("migrate", "restart"):
            name = msg_payload["name"]
            if msg_payload["attempt"] != self.attempts[name]:
                # The attempt was rolled back; stop resending its state.
                self._pending.pop(uid, None)
                return
        self.network.send(target, Message(kind, msg_payload), source=self.name)
        self._schedule_rexmit(
            uid, min(payload["delay"] * 2.0, self.rexmit_cap)
        )

    def _on_migrate_ack(self, payload: dict) -> None:
        self._pending.pop(payload["uid"], None)

    def _on_restart_ack(self, payload: dict) -> None:
        self._pending.pop(payload["uid"], None)

    def _on_undo_ack(self, payload: dict) -> None:
        uid = payload["uid"]
        if self._pending.pop(uid, None) is None:
            return  # duplicate ack
        self._undo_outstanding.discard(uid)
        if not self._undo_outstanding:
            # Barrier down: every undo of the rollback is durably applied,
            # so victims may restart without racing their own before-images.
            self._flush_restarts()
            self._process_doomed()

    def _on_kickoff(self, payload: dict) -> None:
        """Reliable-mode transaction injection: the sequencer owns the
        start so a lost launch can be retransmitted like any restart."""
        self._send_restart(payload["name"])

    def _send_restart(self, name: str, delay: float | None = None) -> None:
        attempt = self.attempts[name]
        origin = self.origins[name]
        payload: dict = {"name": name, "attempt": attempt}
        if self.reliable:
            # The catalog is authoritative in reliable mode; a restart
            # moves the transaction back to its origin node.
            self.locations[name] = origin
            uid = self._uid()
            payload["uid"] = uid
            self._pending[uid] = ("restart", origin, payload)
            self._schedule_rexmit(
                uid, (delay or 0.0) + self.rexmit_delay
            )
        self.network.send(
            origin, Message("restart", payload), delay=delay, source=self.name
        )

    def _restart_delay(self, name: str) -> float:
        # Exponentially growing restart separation: repeated mutual
        # aborts must eventually stagger the victims far enough apart
        # that one finishes before the other starts.
        return (
            self.backoff
            * min(self.attempts[name], 64)
            * self.network.rng.uniform(0.5, 1.5)
        )

    def _flush_restarts(self) -> None:
        victims, self._deferred_restarts = self._deferred_restarts, []
        for name in victims:
            if name in self.committed_names:
                continue
            self._send_restart(name, delay=self._restart_delay(name))

    def _on_route(self, payload: dict) -> None:
        """A node launched a transaction whose first entity lives
        elsewhere; route it so the location catalog stays authoritative."""
        if self._unreconciled(payload):
            return  # un-acked: the route chain re-delivers it later
        node, uid = payload["node"], payload["uid"]
        name, attempt = payload["name"], payload["attempt"]
        steps = payload["steps"]
        self.network.send(
            node, Message("route-ack", {"uid": uid}), source=self.name
        )
        if attempt != self.attempts[name]:
            self.network.send(
                node,
                Message("discard", {"name": name, "attempt": attempt}),
                source=self.name,
            )
            return
        key3 = (name, attempt, steps)
        if key3 in self._route_seen:
            return
        self._route_seen.add(key3)
        txn: MigratingTransaction = payload["txn"]
        if txn.steps_taken != steps or txn.pending_entity is None:
            return  # late duplicate; the shared object has moved on
        target = self.entity_owner[txn.pending_entity]
        self.locations[name] = target
        self._forward_migrate(target, txn, name, attempt, steps)

    def _on_recovered(self, payload: dict) -> None:
        """A node rebooted: replay its durable tail of unacknowledged
        performed-reports (so the global log regains every orphaned
        before-image), then roll back whatever was in flight there —
        the cascade rule computes the full victim set and the recovered
        store is healed by the resulting undo plan."""
        node, uid = payload["node"], payload["uid"]
        tail = payload["tail"]
        epoch = payload.get("epoch", 0)
        fresh = (
            uid not in self._recovered_seen
            and epoch > self._node_epoch.get(node, 0)
        )
        self.network.send(
            node,
            Message(
                "recovered-ack",
                {"uid": uid,
                 # Tail uids are acknowledged only on the copy actually
                 # replayed: a late copy may list reports performed
                 # *after* reconciliation, and acking those without
                 # ingesting them would orphan them (the node would stop
                 # retransmitting a report the log never saw).
                 "performed_uids": (
                     [p["uid"] for p in tail if "uid" in p] if fresh else []
                 )},
            ),
            source=self.name,
        )
        self._recovered_seen.add(uid)
        if not fresh:
            return
        self._node_epoch[node] = epoch
        self.recoveries += 1
        if self._mx is not None:
            self._mx["recoveries"].inc()
        tr = self.network.tracer
        if tr.enabled:
            tr.emit(
                "seq.recover", self.network.now,
                node=node, tail=len(tail), epoch=epoch,
            )
        for entry in tail:
            self._on_performed({**entry, "_replay": True})
        stranded = {
            name
            for name, location in self.locations.items()
            if location == node
            and name not in self.committed_names
            and name not in self.pending_commit
        }
        for name in stranded:
            # Their grants or reports died with the node; nothing will
            # drain them, so the rollback must not wait for it.
            self.outstanding.discard(name)
            self._granted.pop(name, None)
        if stranded:
            self._abort(stranded)

    def _on_commit_check(self, payload: dict) -> None:
        name = payload["name"]
        if payload["attempt"] != self.attempts[name]:
            return
        if name in self.pending_commit:
            self._commit_check(name)

    def _commit_check(self, name: str) -> None:
        txn = self.pending_commit[name]
        key = (name, txn.attempt)
        if self.doomed or self._undo_outstanding:
            # Never commit while a rollback is pending (or its undo
            # barrier is still up): the cascade might still claim this
            # transaction.
            self.network.send(
                self.name,
                Message("commit-check", {"name": name, "attempt": txn.attempt}),
                delay=self.commit_retry,
                timer=True,
            )
            return
        pending = {
            dep for dep in self.deps.get(key, ()) if dep not in self.committed
        }
        if not pending:
            pr = self.profiler
            if pr.enabled:
                with pr.phase("certify"):
                    victims = self.control.certify_commit(name)
            else:
                victims = self.control.certify_commit(name)
            if victims:
                self.deadlocks += 1
                if self._mx is not None:
                    self._mx["deadlocks"].inc()
                self._abort(victims)
                if name not in victims and name in self.pending_commit:
                    self.network.send(
                        self.name,
                        Message(
                            "commit-check",
                            {"name": name, "attempt": txn.attempt},
                        ),
                        delay=self.commit_retry,
                        timer=True,
                    )
                return
            del self.pending_commit[name]
            self.committed.add(key)
            self.committed_names.add(name)
            self.results[name] = txn.result
            self.final_cut_levels[name] = txn.cut_levels
            self.commits += 1
            if self._mx is not None:
                self._mx["commits"].inc()
            tr = self.network.tracer
            if tr.enabled:
                tr.emit(
                    "seq.commit", self.network.now,
                    txn=name, attempt=txn.attempt,
                    latency=self.network.now - self.arrivals.get(name, 0.0),
                )
            self.control.on_commit(name)
            return
        cycle = self._dep_cycle(name)
        if cycle:
            victim = max(cycle, key=self.priority_key)
            self.deadlocks += 1
            if self._mx is not None:
                self._mx["deadlocks"].inc()
            tr = self.network.tracer
            if tr.enabled:
                tr.emit(
                    "deadlock", self.network.now,
                    cycle=list(cycle), victim=victim,
                    cause="commit-dependency",
                )
            self._abort([victim])
            return
        self.network.send(
            self.name,
            Message("commit-check", {"name": name, "attempt": txn.attempt}),
            delay=self.commit_retry,
            timer=True,
        )

    def _dep_cycle(self, name: str) -> list[str] | None:
        graph = nx.DiGraph()
        for (txn_name, attempt), deps in self.deps.items():
            if attempt != self.attempts[txn_name]:
                continue
            for dep_name, dep_attempt in deps:
                if (
                    dep_name not in self.committed_names
                    and dep_attempt == self.attempts[dep_name]
                ):
                    graph.add_edge(txn_name, dep_name)
        try:
            return [u for u, _ in nx.find_cycle(graph, source=name)]
        except (nx.NetworkXNoCycle, nx.NetworkXError):
            return None

    # ------------------------------------------------------------------

    def _abort(self, victims: Iterable[str]) -> None:
        self.doomed.update(victims)
        self._process_doomed()

    def _process_doomed(self) -> None:
        """Execute pending rollbacks once no performed-report is in
        flight for anything the cascade could touch."""
        if not self.doomed:
            return
        if self.outstanding:
            return  # drain first; grants are quiesced meanwhile
        if self._undo_outstanding:
            return  # a previous rollback's undo barrier is still up
        pr = self.profiler
        if pr.enabled:
            with pr.phase("rollback"):
                self._execute_rollback()
        else:
            self._execute_rollback()

    def _execute_rollback(self) -> None:
        victims = set(self.doomed)
        self.doomed.clear()
        seeds = {(name, self.attempts[name]) for name in victims}
        tr = self.network.tracer
        cascade = cascade_closure(
            self.log, seeds, tracer=tr, at=self.network.now
        )
        overlap = cascade & self.committed
        if overlap:
            raise NetworkError(
                f"recoverability violated in distributed run: {overlap}"
            )
        if tr.enabled:
            tr.emit(
                "seq.abort", self.network.now,
                victims=sorted(name for name, _ in seeds),
                cascade=sorted(name for name, _ in cascade - seeds),
                chain=len(cascade),
            )
        plan = undo_plan(self.log, cascade)
        if self.reliable:
            # The faulty network may reorder per-entity undo messages, so
            # coalesce to one restoration per entity.  The plan iterates
            # newest-first, so the final assignment per entity is the
            # *oldest* before-image — the value the store must end at.
            final: dict[str, object] = {}
            for entity, value in plan:
                final[entity] = value
            for entity, value in final.items():
                uid = self._uid()
                target = self.entity_owner[entity]
                payload = {"entity": entity, "value": value, "uid": uid}
                self._pending[uid] = ("undo", target, payload)
                self._undo_outstanding.add(uid)
                self._schedule_rexmit(uid, self.rexmit_delay)
                self.network.send(
                    target, Message("undo", payload), source=self.name
                )
        else:
            for entity, value in plan:
                self.network.send(
                    self.entity_owner[entity],
                    Message("undo", {"entity": entity, "value": value}),
                    source=self.name,
                )
        self.log = [e for e in self.log if e[0] not in cascade]
        self.last_writer = {}
        for key, record in self.log:
            if not record.is_read_only and key not in self.committed:
                self.last_writer[record.entity] = key
        for name, _attempt in sorted(cascade):
            self.control.on_abort(name)
            old_attempt = self.attempts[name]
            self.attempts[name] += 1
            self.progress.pop(name, None)
            self.pending_commit.pop(name, None)
            self.deps.pop((name, old_attempt), None)
            self._granted.pop(name, None)
            location = self.locations.get(name)
            if location is not None:
                self.network.send(
                    location,
                    Message("discard", {"name": name, "attempt": old_attempt}),
                    source=self.name,
                )
            if self.reliable and self._undo_outstanding:
                # Restarts wait behind the undo barrier: a restarted
                # attempt must never read a value its own rollback has
                # not yet restored.
                self._deferred_restarts.append(name)
            else:
                self._send_restart(name, delay=self._restart_delay(name))
            self.aborts += 1
            if self._mx is not None:
                self._mx["aborts"].inc()


# ---------------------------------------------------------------------------
# the runtime
# ---------------------------------------------------------------------------


@dataclass
class DistributedResult:
    """Outcome of one distributed run."""

    execution: Execution
    cut_levels: dict[str, dict[int, int]]
    results: dict[str, Any]
    makespan: float
    messages: int
    messages_by_kind: dict[str, int]
    commits: int
    aborts: int
    deadlocks: int
    node_count: int = 0
    control: str = "none"
    timers: int = 0
    timers_by_kind: dict[str, int] = field(default_factory=dict)
    faults: dict[str, int] = field(default_factory=dict)
    recoveries: int = 0

    def spec(self, nest: KNest) -> InterleavingSpec:
        return spec_for_execution(self.execution, nest, self.cut_levels)

    def summary(self) -> dict[str, Any]:
        return {
            "control": self.control,
            "nodes": self.node_count,
            "makespan": round(self.makespan, 1),
            "messages": self.messages,
            "commits": self.commits,
            "aborts": self.aborts,
        }


class DistributedRuntime:
    """Wire programs, entities and a control into a simulated cluster."""

    def __init__(
        self,
        programs: Iterable[TransactionProgram],
        initial_values: Mapping[str, Any],
        control,
        nodes: int = 4,
        latency: tuple[float, float] = (1.0, 3.0),
        seed: int = 0,
        arrivals: Mapping[str, float] | None = None,
        retry_delay: float = 2.0,
        backoff: float = 6.0,
        faults: FaultPlan | None = None,
        rexmit_delay: float = 4.0,
        tracer=None,
        registry: MetricsRegistry | None = None,
        profiler: PhaseProfiler | None = None,
        wal_dir: str | None = None,
    ) -> None:
        programs = list(programs)
        self.registry = registry if registry is not None else NULL_REGISTRY
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        if nodes < 1:
            raise NetworkError("need at least one data node")
        node_names = [f"node{i}" for i in range(nodes)]
        if faults is not None:
            # The sequencer is assumed fail-free (the classic asymmetry
            # of sequencer designs); only data nodes may crash.
            for event in faults.crashes:
                if event.node not in node_names:
                    raise NetworkError(
                        f"crash event targets unknown or uncrashable "
                        f"node {event.node!r}"
                    )
        self.network = Network(
            latency=latency, seed=seed, faults=faults, tracer=tracer,
            registry=registry, profiler=profiler,
        )
        entity_owner = {
            entity: node_names[i % nodes]
            for i, entity in enumerate(sorted(initial_values))
        }
        origins = {
            program.name: node_names[i % nodes]
            for i, program in enumerate(programs)
        }
        arrivals = dict(arrivals or {})
        arrival_times = {
            program.name: arrivals.get(program.name, 0.0)
            for program in programs
        }
        self.control = control
        self.sequencer = Sequencer(
            "sequencer",
            self.network,
            control,
            entity_owner,
            origins,
            arrival_times,
            backoff=backoff,
            rexmit_delay=rexmit_delay,
            registry=registry,
            profiler=profiler,
        )
        self.nodes: list[DataNode] = []
        # Each node writes into a private registry; ``registry_snapshot``
        # folds them with the shared one via ``MetricsRegistry.merge``.
        self._node_registries: dict[str, MetricsRegistry] = {}
        for node_name in node_names:
            node_entities = {
                entity: initial_values[entity]
                for entity, owner in entity_owner.items()
                if owner == node_name
            }
            node_programs = {
                program.name: program
                for program in programs
                if origins[program.name] == node_name
            }
            node_registry = (
                MetricsRegistry() if self.registry.enabled else None
            )
            if node_registry is not None:
                self._node_registries[node_name] = node_registry
            wal_path = None
            if wal_dir is not None:
                os.makedirs(wal_dir, exist_ok=True)
                wal_path = os.path.join(wal_dir, f"{node_name}.wal")
            self.nodes.append(
                DataNode(
                    node_name,
                    self.network,
                    "sequencer",
                    node_entities,
                    node_programs,
                    entity_owner,
                    retry_delay=retry_delay,
                    rexmit_delay=rexmit_delay,
                    registry=node_registry,
                    wal_path=wal_path,
                    catalog={p.name: p for p in programs},
                )
            )
        self._initial_values = dict(initial_values)
        self._programs = programs
        self._origins = origins
        self._arrivals = arrival_times

    def start(self) -> None:
        """Inject the workload; nothing is delivered until the network
        runs (fully via :meth:`run` or in slices via :meth:`pump`)."""
        for program in self._programs:
            if self.network.reliable:
                # The sequencer owns injection under faults: the kickoff
                # is a local timer (the workload always *arrives*), and
                # the launch it triggers is a retransmittable restart.
                self.network.send(
                    "sequencer",
                    Message("kickoff", {"name": program.name}),
                    delay=self._arrivals[program.name],
                    timer=True,
                )
            else:
                self.network.send(
                    self._origins[program.name],
                    Message("start", {"name": program.name}),
                    delay=self._arrivals[program.name],
                )

    def pump(self, until: float) -> float:
        """Deliver everything due at or before ``until`` simulation time
        and return the current clock — the dashboard's tick-batch mode."""
        return self.network.run(until=until)

    def registry_snapshot(self) -> MetricsRegistry:
        """A fresh registry folding the shared registry with every
        node-private one (counters add, gauges max, histograms merge) —
        the distributed analogue of ``Metrics.merge``.  Fresh on every
        call, so repeated snapshots never double-count."""
        merged = MetricsRegistry()
        merged.merge(self.registry)
        for node_registry in self._node_registries.values():
            merged.merge(node_registry)
        return merged

    def run(self) -> DistributedResult:
        self.start()
        self.network.run()
        return self.finish()

    def finish(self) -> DistributedResult:
        makespan = self.network.now
        seq = self.sequencer
        if len(seq.committed_names) != len(self._programs):
            raise NetworkError(
                f"distributed run quiesced with only "
                f"{len(seq.committed_names)}/{len(self._programs)} commits"
            )
        records = [
            record for key, record in seq.log if key in seq.committed
        ]
        execution = Execution(records, dict(self._initial_values))
        execution.validate()
        return DistributedResult(
            execution=execution,
            cut_levels=dict(seq.final_cut_levels),
            results=dict(seq.results),
            makespan=makespan,
            messages=self.network.messages_sent,
            messages_by_kind=dict(self.network.messages_by_kind),
            commits=seq.commits,
            aborts=seq.aborts,
            deadlocks=seq.deadlocks,
            node_count=len(self.nodes),
            control=self.control.name,
            timers=self.network.timers_set,
            timers_by_kind=dict(self.network.timers_by_kind),
            faults=self.network.fault_summary(),
            recoveries=seq.recoveries,
        )
