"""Graph exports for inspection and debugging.

Renders dependency graphs, coherent-closure graphs and nested action
trees into plain-text / DOT forms so experiment artefacts can be eyeballed
without plotting dependencies.
"""

from __future__ import annotations

import networkx as nx

from repro.model.execution import Execution

__all__ = ["to_dot", "dependency_dot", "condensed_transaction_order", "ascii_schedule"]


def to_dot(graph: nx.DiGraph, name: str = "G") -> str:
    """A minimal GraphViz DOT rendering of a digraph."""
    lines = [f"digraph {name} {{"]
    for node in sorted(graph.nodes, key=repr):
        lines.append(f'  "{node}";')
    for u, v in sorted(graph.edges, key=repr):
        lines.append(f'  "{u}" -> "{v}";')
    lines.append("}")
    return "\n".join(lines)


def dependency_dot(execution: Execution, conflicts: str = "all") -> str:
    return to_dot(execution.dependency_graph(conflicts), "dependency")


def condensed_transaction_order(
    execution: Execution, conflicts: str = "all"
) -> list[list[str]]:
    """Strongly connected components of the serialization graph in
    topological order — the transaction-level shape of a schedule (a
    single-component list means a serialization cycle)."""
    from repro.analysis.checker import serialization_graph

    graph = serialization_graph(execution, conflicts)
    condensation = nx.condensation(graph)
    order = list(nx.topological_sort(condensation))
    return [
        sorted(condensation.nodes[c]["members"]) for c in order
    ]


def ascii_schedule(execution: Execution, width: int = 100) -> str:
    """A one-line-per-transaction timeline of the execution.

    Each column is a performed step; a letter marks which transaction
    performed it (R for reads, W for writes/updates of that row's
    transaction)."""
    txns = execution.transactions
    rows = {t: [] for t in txns}
    for record in execution.records[:width]:
        for t in txns:
            if record.step.transaction == t:
                rows[t].append("R" if record.is_read_only else "W")
            else:
                rows[t].append(".")
    label_width = max((len(t) for t in txns), default=0)
    return "\n".join(
        f"{t:<{label_width}} {''.join(cells)}" for t, cells in rows.items()
    )
