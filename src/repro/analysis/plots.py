"""Plain-text figures for the experiment artefacts.

The harness is dependency-light (no matplotlib), so "figures" are ASCII:
horizontal bar charts for categorical comparisons and multi-series line
sketches for sweeps.  Both render fine in Markdown code fences, which is
how EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["bar_chart", "line_chart"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """A horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not labels:
        return "(empty chart)"
    peak = max(max(values), 1e-12)
    label_width = max(len(str(label)) for label in labels)
    rows = []
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(width * value / peak)), 1 if value > 0 else 0)
        rows.append(
            f"{str(label):<{label_width}} | {bar:<{width}} {value:g}{unit}"
        )
    return "\n".join(rows)


def line_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
) -> str:
    """A multi-series scatter/line sketch on a character grid.

    Each series gets a distinct marker; points are plotted on a
    ``height`` x ``width`` grid scaled to the data ranges, with a legend
    and y-axis extremes.
    """
    markers = "*o+x@%&"
    points = [
        (x, y)
        for values in series.values()
        for x, y in zip(x_values, values)
    ]
    if not points:
        return "(empty chart)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(x_values, values):
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker
    lines = [f"{y_hi:>10.3g} +{''.join(grid[0])}"]
    lines.extend(f"{'':>10} |{''.join(row)}" for row in grid[1:-1])
    lines.append(f"{y_lo:>10.3g} +{''.join(grid[-1])}")
    lines.append(f"{'':>10}  {str(x_lo):<{width // 2}}{x_hi:>{width // 2}.6g}")
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{'':>10}  {legend}")
    return "\n".join(lines)
