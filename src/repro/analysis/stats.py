"""Small statistics helpers for the experiment harness.

Keeps the benchmark scripts dependency-light: means, confidence
half-widths and fixed-width table rendering for the EXPERIMENTS.md
artefacts.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = ["mean", "stddev", "confidence_half_width", "format_table", "Summary", "summarize"]


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def stddev(values: Iterable[float]) -> float:
    values = list(values)
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def confidence_half_width(values: Iterable[float], z: float = 1.96) -> float:
    """Normal-approximation half-width of a confidence interval."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    return z * stddev(values) / math.sqrt(len(values))


class Summary:
    """Mean plus spread of a sample, printable as ``m ± h``."""

    def __init__(self, values: Iterable[float]) -> None:
        self.values = list(values)
        self.mean = mean(self.values)
        self.half_width = confidence_half_width(self.values)

    def __format__(self, spec: str) -> str:
        spec = spec or ".2f"
        return f"{self.mean:{spec}} ± {self.half_width:{spec}}"

    def __repr__(self) -> str:
        return f"Summary({self:.3f}, n={len(self.values)})"


def summarize(values: Iterable[float]) -> Summary:
    return Summary(values)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence], min_width: int = 8
) -> str:
    """Render an aligned plain-text table (also valid Markdown)."""
    rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(min_width, len(h), *(len(r[i]) for r in rows) if rows else (0,))
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"
    sep = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    out = [line(headers), sep]
    out.extend(line(r) for r in rows)
    return "\n".join(out)
