"""Offline schedule checkers.

One-stop classification of a recorded execution against the hierarchy of
criteria the paper relates:

* serial (trivially atomic),
* conflict-serializable (the classical [EGLT] cycle test on the
  serialization graph over transactions),
* multilevel atomic (coherent total order, Section 4.3),
* multilevel correctable (Theorem 2).

Serializability is checked both classically (serialization graph) and as
the k = 2 instance of Theorem 2 — :func:`classify_execution` asserts the
two agree, so every experiment run doubles as a cross-validation of the
generalisation claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.core.atomicity import check_correctability, is_multilevel_atomic
from repro.core.interleaving import InterleavingSpec
from repro.core.nests import KNest
from repro.core.reach import is_acyclic
from repro.core.serializability import is_serial, serializability_spec
from repro.errors import ReproError
from repro.model.breakpoints import spec_for_execution
from repro.model.execution import Execution

__all__ = [
    "ScheduleReport",
    "serialization_graph",
    "is_conflict_serializable",
    "classify_execution",
]


@dataclass
class ScheduleReport:
    """Where one execution sits in the criterion hierarchy."""

    serial: bool
    conflict_serializable: bool
    multilevel_atomic: bool
    multilevel_correctable: bool
    cycle: list | None = None

    def as_row(self) -> dict[str, bool]:
        return {
            "serial": self.serial,
            "serializable": self.conflict_serializable,
            "mla-atomic": self.multilevel_atomic,
            "mla-correctable": self.multilevel_correctable,
        }


def serialization_graph(
    execution: Execution, conflicts: str = "all"
) -> nx.DiGraph:
    """The [EGLT]-style serialization graph: nodes are transactions, with
    an edge ``t -> u`` when some step of ``t`` precedes a conflicting
    step of ``u``."""
    graph: nx.DiGraph = nx.DiGraph()
    graph.add_nodes_from(execution.transactions)
    for a, b in execution.dependency_edges(conflicts):
        if a.transaction != b.transaction:
            graph.add_edge(a.transaction, b.transaction)
    return graph


def is_conflict_serializable(
    execution: Execution, conflicts: str = "all"
) -> bool:
    """Classical serializability: the serialization graph is acyclic.

    Runs Kahn's algorithm directly over the transaction-level edge set
    (no graph object); :func:`serialization_graph` remains available for
    plotting and inspection."""
    edges = {
        (a.transaction, b.transaction)
        for a, b in execution.dependency_edges(conflicts)
        if a.transaction != b.transaction
    }
    return is_acyclic(execution.transactions, edges)


def classify_execution(
    execution: Execution,
    nest: KNest,
    cut_levels: dict[str, dict[int, int]],
    conflicts: str = "all",
    spec: InterleavingSpec | None = None,
) -> ScheduleReport:
    """Classify an execution against every criterion at once.

    Cross-validates the paper's generalisation claim on each call: the
    classical serialization-graph test must agree with Theorem 2 applied
    to the flat 2-nest.
    """
    spec = spec or spec_for_execution(execution, nest, cut_levels)
    step_orders = {t: execution.steps_of(t) for t in execution.transactions}
    deps = execution.dependency_edges(conflicts)

    serial = is_serial(step_orders, execution.steps)
    classical = is_conflict_serializable(execution, conflicts)
    via_theorem2 = check_correctability(
        serializability_spec(step_orders), deps
    ).correctable
    if classical != via_theorem2:
        raise ReproError(
            "serialization-graph test and k=2 Theorem 2 disagree: "
            f"classical={classical}, theorem2={via_theorem2}"
        )

    atomic = is_multilevel_atomic(spec, execution.steps)
    report = check_correctability(spec, deps)
    return ScheduleReport(
        serial=serial,
        conflict_serializable=classical,
        multilevel_atomic=atomic,
        multilevel_correctable=report.correctable,
        cycle=report.closure.cycle,
    )
