"""Offline checkers, graph exports and statistics for experiments."""

from repro.analysis.checker import (
    ScheduleReport,
    classify_execution,
    is_conflict_serializable,
    serialization_graph,
)
from repro.analysis.graphs import (
    ascii_schedule,
    condensed_transaction_order,
    dependency_dot,
    to_dot,
)
from repro.analysis.stats import (
    Summary,
    confidence_half_width,
    format_table,
    mean,
    stddev,
    summarize,
)

__all__ = [
    "ScheduleReport",
    "serialization_graph",
    "is_conflict_serializable",
    "classify_execution",
    "to_dot",
    "dependency_dot",
    "condensed_transaction_order",
    "ascii_schedule",
    "mean",
    "stddev",
    "confidence_half_width",
    "Summary",
    "summarize",
    "format_table",
]
