"""The stable public facade: submissions in, result envelopes out.

Every way of running transaction programs in this repository — the CLI
``run``/``sweep`` commands, the test harnesses, and the service mode's
ingest server — goes through the same three types:

* :class:`ProgramSpec` — a *declarative*, JSON-representable transaction
  program.  The engine's native programs are Python generator closures
  (arbitrarily data-dependent, per Section 4.3 of the paper), which an
  external client cannot ship over a socket; ``ProgramSpec`` restricts
  the vocabulary to a small op set (``read`` / ``add`` / ``set`` /
  ``bp``) that compiles to an equivalent generator.  The spec carries
  its k-nest *path* (hierarchy labels, as in ``KNest.from_paths``), so
  the submission's atomicity-level annotations travel with the program
  and externally submitted traffic remains checkable.
* :class:`Submission` — a program spec plus client identity and an
  idempotency key (resubmission after a lost response must not run the
  transaction twice).
* :class:`ResultEnvelope` — the typed outcome: status, serial position
  in the commit order, latencies, attempt count, and the abort cause
  chain (from the flight-recorder explainer) when restarts happened.

All three round-trip through JSON via ``to_json`` / ``from_json``; the
wire format is versioned by construction (unknown fields are rejected,
and the service echoes the same shapes the library produces).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.engine.runtime import Engine, EngineResult
from repro.engine.schedulers.base import Scheduler
from repro.engine.schedulers.mla_detect import MLADetectScheduler
from repro.engine.schedulers.mla_prevent import MLAPreventScheduler
from repro.engine.schedulers.nested_lock import NestedLockScheduler
from repro.engine.schedulers.serial import SerialScheduler
from repro.engine.schedulers.timestamp import TimestampScheduler
from repro.engine.schedulers.two_phase import TwoPhaseLockingScheduler
from repro.errors import SpecificationError
from repro.model.programs import (
    Breakpoint,
    TransactionProgram,
    read,
    update,
    write,
)

__all__ = [
    "SCHEDULER_FACTORIES",
    "make_scheduler",
    "ProgramSpec",
    "Submission",
    "ResultEnvelope",
    "ENVELOPE_STATUSES",
    "run_workload",
    "envelopes_from_engine",
]

#: Scheduler name -> factory taking the workload's k-nest.  The CLI's
#: ``SCHEDULERS`` table is an alias of this map; the service accepts the
#: same names.
SCHEDULER_FACTORIES = {
    "serial": lambda nest: SerialScheduler(),
    "2pl": lambda nest: TwoPhaseLockingScheduler(),
    "timestamp": lambda nest: TimestampScheduler(),
    "mla-detect": lambda nest: MLADetectScheduler(nest),
    "mla-prevent": lambda nest: MLAPreventScheduler(nest),
    "mla-nested-lock": lambda nest: NestedLockScheduler(nest),
    "none": lambda nest: Scheduler(),
}


def make_scheduler(name: str, nest) -> Scheduler:
    """Instantiate a concurrency control by its public name."""
    factory = SCHEDULER_FACTORIES.get(name)
    if factory is None:
        raise SpecificationError(
            f"unknown scheduler {name!r}; choose from "
            f"{sorted(SCHEDULER_FACTORIES)}"
        )
    return factory(nest)


# ----------------------------------------------------------------------
# declarative programs
# ----------------------------------------------------------------------

#: op name -> arity of its operands (beyond the op name itself).
_OP_ARITY = {"read": 1, "add": 2, "set": 2, "bp": 1}


@dataclass(frozen=True)
class ProgramSpec:
    """A declarative transaction program with its k-nest placement.

    ``ops`` is a tuple of op tuples:

    * ``("read", entity)`` — read; the value joins the program's result
      sum;
    * ``("add", entity, delta)`` — read-modify-write ``v + delta``;
    * ``("set", entity, value)`` — blind overwrite;
    * ``("bp", level)`` — declare a breakpoint at ``level`` (and all
      finer levels) between the surrounding accesses.

    ``path`` places the transaction in the hierarchy exactly as a
    ``KNest.from_paths`` path does; all specs submitted to one engine
    must share a path length (the nest depth).

    The compiled program returns the sum of the values it read — a
    deterministic function of the values seen, so two runs producing the
    same committed history produce the same results map (the property
    the service/library differential checks).
    """

    name: str
    ops: tuple[tuple, ...]
    path: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SpecificationError("program name must be a non-empty string")
        object.__setattr__(self, "ops", tuple(tuple(op) for op in self.ops))
        object.__setattr__(self, "path", tuple(self.path))
        for label in self.path:
            if not isinstance(label, str):
                raise SpecificationError(
                    f"path labels must be strings, got {label!r}"
                )
        if not self.ops:
            raise SpecificationError(f"program {self.name!r} has no ops")
        accesses = 0
        previous_bp = True  # forbids a leading breakpoint too
        for op in self.ops:
            if not op or op[0] not in _OP_ARITY:
                raise SpecificationError(
                    f"program {self.name!r}: unknown op {op!r}"
                )
            kind = op[0]
            if len(op) != _OP_ARITY[kind] + 1:
                raise SpecificationError(
                    f"program {self.name!r}: op {op!r} has wrong arity"
                )
            if kind == "bp":
                if previous_bp:
                    raise SpecificationError(
                        f"program {self.name!r}: breakpoints must sit "
                        f"between two accesses"
                    )
                if not isinstance(op[1], int) or op[1] < 1:
                    raise SpecificationError(
                        f"program {self.name!r}: breakpoint level must be "
                        f"a positive integer, got {op[1]!r}"
                    )
                previous_bp = True
                continue
            previous_bp = False
            accesses += 1
            if not isinstance(op[1], str) or not op[1]:
                raise SpecificationError(
                    f"program {self.name!r}: entity must be a non-empty "
                    f"string in {op!r}"
                )
            if kind == "add" and not isinstance(op[2], int):
                raise SpecificationError(
                    f"program {self.name!r}: add delta must be an int "
                    f"in {op!r}"
                )
        if previous_bp and accesses:
            raise SpecificationError(
                f"program {self.name!r}: trailing breakpoint"
            )
        if not accesses:
            raise SpecificationError(
                f"program {self.name!r} performs no accesses"
            )

    @property
    def entities(self) -> frozenset[str]:
        return frozenset(op[1] for op in self.ops if op[0] != "bp")

    def compile(self) -> TransactionProgram:
        """The equivalent generator program (result = sum of reads)."""
        ops = self.ops

        def body():
            total = 0
            for op in ops:
                kind = op[0]
                if kind == "read":
                    total += yield read(op[1])
                elif kind == "add":
                    yield update(op[1], lambda v, d=op[2]: v + d)
                elif kind == "set":
                    yield write(op[1], op[2])
                else:
                    yield Breakpoint(op[1])
            return total

        return TransactionProgram(self.name, body)

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "path": list(self.path),
            "ops": [list(op) for op in self.ops],
        }

    @classmethod
    def from_dict(cls, data) -> "ProgramSpec":
        _require_keys(data, {"name", "ops"}, optional={"path"}, kind="program")
        return cls(
            name=data["name"],
            ops=tuple(tuple(op) for op in data["ops"]),
            path=tuple(data.get("path", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProgramSpec":
        return cls.from_dict(_load_object(text, "program"))


# ----------------------------------------------------------------------
# submissions and envelopes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Submission:
    """One client request: a program plus identity and idempotency.

    ``idempotency_key`` defaults to the program name — resubmitting the
    same submission (a retry after a lost response) is answered from the
    first run's envelope, never executed twice.
    """

    program: ProgramSpec
    client_id: str = ""
    idempotency_key: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.client_id, str):
            raise SpecificationError("client_id must be a string")
        if not isinstance(self.idempotency_key, str):
            raise SpecificationError("idempotency_key must be a string")
        if not self.idempotency_key:
            object.__setattr__(self, "idempotency_key", self.program.name)

    def to_dict(self) -> dict[str, Any]:
        return {
            "program": self.program.to_dict(),
            "client_id": self.client_id,
            "idempotency_key": self.idempotency_key,
        }

    @classmethod
    def from_dict(cls, data) -> "Submission":
        _require_keys(
            data,
            {"program"},
            optional={"client_id", "idempotency_key"},
            kind="submission",
        )
        return cls(
            program=ProgramSpec.from_dict(data["program"]),
            client_id=data.get("client_id", ""),
            idempotency_key=data.get("idempotency_key", ""),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Submission":
        return cls.from_dict(_load_object(text, "submission"))


#: ``committed``: first attempt committed.  ``restarted``: committed
#: after at least one rollback (the cause chain explains why).
#: ``aborted``: still uncommitted when the run was cut off.
#: ``rejected``: refused at admission (never reached the engine).
ENVELOPE_STATUSES = frozenset(
    {"committed", "restarted", "aborted", "rejected"}
)


@dataclass(frozen=True)
class ResultEnvelope:
    """The typed outcome of one submission.

    ``serial_position`` is the transaction's index in the commit order —
    its place in the equivalent serial-ish history the run certifies.
    Ticks are the engine's logical clock; ``latency_ticks`` is commit
    minus arrival.  ``abort_causes`` carries the explainer's cause-chain
    lines for the attempts that were rolled back.
    """

    name: str
    status: str
    serial_position: int | None = None
    arrival_tick: int | None = None
    commit_tick: int | None = None
    latency_ticks: int | None = None
    attempts: int = 1
    waits: int = 0
    result: Any = None
    abort_causes: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.status not in ENVELOPE_STATUSES:
            raise SpecificationError(
                f"unknown envelope status {self.status!r}; expected one of "
                f"{sorted(ENVELOPE_STATUSES)}"
            )
        object.__setattr__(
            self, "abort_causes", tuple(self.abort_causes)
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "serial_position": self.serial_position,
            "arrival_tick": self.arrival_tick,
            "commit_tick": self.commit_tick,
            "latency_ticks": self.latency_ticks,
            "attempts": self.attempts,
            "waits": self.waits,
            "result": self.result,
            "abort_causes": list(self.abort_causes),
        }

    @classmethod
    def from_dict(cls, data) -> "ResultEnvelope":
        _require_keys(
            data,
            {"name", "status"},
            optional={
                "serial_position", "arrival_tick", "commit_tick",
                "latency_ticks", "attempts", "waits", "result",
                "abort_causes",
            },
            kind="envelope",
        )
        return cls(
            name=data["name"],
            status=data["status"],
            serial_position=data.get("serial_position"),
            arrival_tick=data.get("arrival_tick"),
            commit_tick=data.get("commit_tick"),
            latency_ticks=data.get("latency_ticks"),
            attempts=data.get("attempts", 1),
            waits=data.get("waits", 0),
            result=data.get("result"),
            abort_causes=tuple(data.get("abort_causes", ())),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ResultEnvelope":
        return cls.from_dict(_load_object(text, "envelope"))


# ----------------------------------------------------------------------
# the one entry path
# ----------------------------------------------------------------------


def run_workload(
    workload, scheduler: str, seed: int = 0, **engine_kwargs
) -> EngineResult:
    """Run a workload object (banking / CAD / FGL / ...) to completion
    under a named scheduler.  This is the entry path ``repro run`` and
    ``repro sweep`` use; the service reaches the same engine through
    :meth:`Engine.add_program` instead of up-front construction."""
    control = make_scheduler(scheduler, workload.nest)
    return workload.engine(control, seed=seed, **engine_kwargs).run()


def envelopes_from_engine(
    engine: Engine,
    result: EngineResult,
    abort_causes: dict[str, list[str]] | None = None,
) -> dict[str, ResultEnvelope]:
    """Fold an engine's per-transaction state into result envelopes.

    ``abort_causes`` (name -> explainer lines) is attached to restarted
    and aborted transactions; the service fills it from the flight
    recorder, the library path may omit it.
    """
    causes = abort_causes or {}
    serial = {name: i for i, name in enumerate(result.commit_order)}
    envelopes: dict[str, ResultEnvelope] = {}
    for name, state in engine.txns.items():
        chain = tuple(causes.get(name, ()))
        if state.committed:
            status = "restarted" if state.attempt > 0 else "committed"
            latency = (
                state.commit_tick - state.arrival_tick
                if state.commit_tick is not None
                else None
            )
            envelopes[name] = ResultEnvelope(
                name=name,
                status=status,
                serial_position=serial.get(name),
                arrival_tick=state.arrival_tick,
                commit_tick=state.commit_tick,
                latency_ticks=latency,
                attempts=state.attempt + 1,
                waits=state.waits,
                result=result.results.get(name),
                abort_causes=chain,
            )
        else:
            envelopes[name] = ResultEnvelope(
                name=name,
                status="aborted",
                arrival_tick=state.arrival_tick,
                attempts=state.attempt + 1,
                waits=state.waits,
                abort_causes=chain,
            )
    return envelopes


# ----------------------------------------------------------------------
# wire-shape plumbing
# ----------------------------------------------------------------------


def _load_object(text: str, kind: str) -> dict:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecificationError(f"malformed {kind} JSON: {exc}") from None
    if not isinstance(data, dict):
        raise SpecificationError(f"{kind} must be a JSON object")
    return data


def _require_keys(data, required: set, optional: set, kind: str) -> None:
    if not isinstance(data, dict):
        raise SpecificationError(f"{kind} must be a JSON object")
    missing = required - set(data)
    if missing:
        raise SpecificationError(
            f"{kind} is missing keys: {sorted(missing)}"
        )
    unknown = set(data) - required - optional
    if unknown:
        raise SpecificationError(
            f"{kind} has unknown keys: {sorted(unknown)}"
        )
