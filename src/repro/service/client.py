"""A small synchronous client for the newline-JSON protocol.

One connection, one request in flight at a time — the shape ``repro
submit`` and the tests want.  (The traffic generator keeps many requests
in flight by opening several connections and pipelining with ``seq``
tags; see :mod:`repro.workloads.traffic`.)
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.api import ResultEnvelope, Submission
from repro.errors import ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """The server answered ``ok: false`` (and it was not a rejection the
    caller asked to see)."""


class ServiceClient:
    """Blocking client; usable as a context manager."""

    def __init__(
        self, host: str, port: int, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """Send one JSON line, read one JSON line."""
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        response = json.loads(line)
        if not isinstance(response, dict):
            raise ServiceError(f"malformed response: {response!r}")
        return response

    def submit(self, submission: Submission) -> dict:
        """Submit and wait for the envelope.  Returns the full response —
        callers inspect ``ok`` / ``retry_after`` for rejections; the
        envelope (including rejections) is under ``"envelope"``."""
        return self.request(
            {"op": "submit", "submission": submission.to_dict()}
        )

    def submit_or_raise(self, submission: Submission) -> ResultEnvelope:
        response = self.submit(submission)
        if not response.get("ok"):
            raise ServiceError(response.get("error", "rejected"))
        return ResultEnvelope.from_dict(response["envelope"])

    def health(self) -> dict:
        return self._ok(self.request({"op": "health"}))

    def metrics_text(self) -> str:
        return self._ok(self.request({"op": "metrics"}))["text"]

    def metrics_snapshot(self) -> dict:
        return self._ok(
            self.request({"op": "metrics", "format": "json"})
        )["snapshot"]

    def admission(self, samples: int = 20, seed: int = 0) -> list[dict]:
        return self._ok(
            self.request(
                {"op": "admission", "samples": samples, "seed": seed}
            )
        )["rows"]

    def drain(self) -> dict:
        return self._ok(self.request({"op": "drain"}))

    def shutdown(self) -> dict:
        return self._ok(self.request({"op": "shutdown"}))

    @staticmethod
    def _ok(response: dict) -> dict[str, Any]:
        if not response.get("ok"):
            raise ServiceError(response.get("error", "request failed"))
        return response
