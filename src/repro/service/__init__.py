"""Service mode: the long-running ingest server and its client.

The batch library runs a fixed program set to completion; this package
turns the same engine into an open system — submissions arrive over a
socket, pass an admission gate, are batched into engine tick slices, and
come back as typed :class:`repro.api.ResultEnvelope` results.  The
committed history of a zero-fault service run is bit-identical to the
library path replaying the same submissions at the recorded arrival
ticks (differential-tested), so every correctness result from the paper
carries over to served traffic unchanged.
"""

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, TransactionService, serve

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "ServiceClient",
    "ServiceConfig",
    "TransactionService",
    "serve",
]
