"""The ingest server: submissions over a socket, batched engine ticks.

Architecture (DESIGN.md §4g)::

    client ──newline-JSON──▶ connection handler ──▶ admission gate
                                                      │ admitted
                                                      ▼
                                              asyncio ingest queue
                                                      │ batches
                                                      ▼
    envelope ◀── commit watcher ◀── Engine.advance(until_tick=...) pump

The service is *pure orchestration*: the engine it pumps is the exact
library engine, fed through :meth:`Engine.add_program` (equivalent, by
construction, to up-front ``arrivals=`` scheduling), and nothing in this
module consumes the engine's seeded rng.  A zero-fault run's committed
history is therefore bit-identical to the library path replaying the
same submissions at the recorded arrival ticks — the differential test
in tier 1 holds the service to that.

The socket protocol is one JSON object per line.  Ops: ``submit``,
``submit_batch``, ``health``, ``metrics``, ``admission``, ``drain``,
``shutdown``.  Responses echo the request's ``seq`` (responses to
pipelined requests may interleave).  For convenience the same port also
speaks just enough HTTP for ``curl``: ``GET /metrics`` (Prometheus text
exposition) and ``GET /healthz``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from repro.api import (
    ResultEnvelope,
    Submission,
    envelopes_from_engine,
    make_scheduler,
)
from repro.audit.history import HISTORY_FORMAT_VERSION, NULL_HISTORY
from repro.core.nests import PathNest
from repro.durability.wal import NULL_WAL
from repro.engine.runtime import Engine, EngineResult
from repro.errors import ReproError
from repro.obs import (
    MetricsRegistry,
    PhaseProfiler,
    RingTracer,
    explain_abort,
    json_snapshot,
    live_registry_snapshot,
    prometheus_text,
)
from repro.service.admission import AdmissionConfig, AdmissionController

__all__ = ["ServiceConfig", "TransactionService", "serve"]


@dataclass(frozen=True)
class ServiceConfig:
    """Shape of one service instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port is reported at start
    scheduler: str = "2pl"
    seed: int = 0
    nest_depth: int = 1
    #: Initial value given to entities on first reference.
    initial_value: int = 100
    #: Engine ticks per pump slice; between slices the event loop runs
    #: (new submissions are ingested, responses written).
    tick_batch: int = 256
    recovery: str = "transaction"
    #: Flight-recorder ring capacity feeding abort explanations; the
    #: ring is bounded so a soak cannot grow it without limit.
    trace_capacity: int = 4096
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Directory for the durability WAL (+ snapshots).  ``None`` runs
    #: the service purely in memory; with a directory, a restarted
    #: service recovers its engine by deterministic replay and answers
    #: resubmitted idempotency keys from the log instead of re-running.
    wal_dir: str | None = None
    #: Snapshot cadence in ticks (0 = never; recovery replays the whole
    #: log from genesis).
    wal_snapshot_every: int = 0
    #: Stream every commit to this JSONL history file (the audit plane's
    #: portable format; ``None`` captures nothing at null-sink cost).
    #: After recovery the capture resumes with post-recovery commits.
    history_path: str | None = None


class TransactionService:
    """The engine-owning core, independent of any transport.

    All state is touched only from the event loop thread: connection
    handlers enqueue admitted submissions and ``await`` their envelope
    futures; a single pump task drains the queue into the engine and
    advances it in tick batches, resolving futures as commits land.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.registry = MetricsRegistry()
        self.profiler = PhaseProfiler()
        self.tracer = RingTracer(capacity=config.trace_capacity)
        self.wal = NULL_WAL
        self.history = NULL_HISTORY
        if config.history_path is not None:
            from repro.audit.history import HistoryWriter

            self.history = HistoryWriter(
                config.history_path,
                initial={},
                depth=config.nest_depth,
                meta={
                    "service": True,
                    "scheduler": config.scheduler,
                    "seed": config.seed,
                    "initial_value": config.initial_value,
                },
            )
        #: idempotency key -> name, rebuilt from the log at recovery;
        #: resubmissions of these keys are answered from the replayed
        #: engine, never re-executed.
        self._recovered_keys: dict[str, str] = {}
        #: name -> arrival tick, recorded at ingest for the differential.
        self.arrivals: dict[str, int] = {}
        self._resolved = 0  # commits already folded into envelopes
        self.nest, self.engine = self._boot(config)
        self.admission = AdmissionController(
            config.admission, config.nest_depth
        )
        self._queue: asyncio.Queue = asyncio.Queue()
        #: name -> future resolving to a ResultEnvelope.
        self._pending: dict[str, asyncio.Future] = {}
        #: idempotency key -> future (kept after resolution, so a
        #: resubmission is answered from the first run, never re-run).
        self._by_key: dict[str, asyncio.Future] = {}
        self._pump_task: asyncio.Task | None = None
        self._mx = self._bind_metrics()

    def _boot(self, config: ServiceConfig):
        """Build the (nest, engine) pair — fresh, or recovered from the
        configured WAL directory when it already holds history."""
        if config.wal_dir is not None:
            from repro.durability.wal import EngineWal

            wal = EngineWal(
                config.wal_dir,
                snapshot_every=config.wal_snapshot_every,
            )
            if wal.log.payloads:
                wal.close()
                return self._recover(config)
            self.wal = wal
        nest = PathNest(config.nest_depth)
        engine = Engine(
            [],
            {},
            make_scheduler(config.scheduler, nest),
            seed=config.seed,
            recovery=config.recovery,
            max_ticks=1 << 62,
            tracer=self.tracer,
            registry=self.registry,
            profiler=self.profiler,
            wal=self.wal if self.wal.enabled else None,
            history=self.history if self.history.enabled else None,
        )
        if self.wal.enabled:
            self.wal.log_genesis(
                seed=config.seed,
                scheduler=config.scheduler,
                recovery=config.recovery,
                stall_limit=engine.stall_limit,
                backoff=engine.backoff,
                max_ticks=1 << 62,
                initial={},
                programs=[],
                specs={},
                meta={
                    "nest_depth": config.nest_depth,
                    "initial_value": config.initial_value,
                },
            )
        return nest, engine

    def _recover(self, config: ServiceConfig):
        """Rebuild the engine by deterministic replay of the WAL left by
        a previous incarnation; every ingest is an ``add`` record, so
        the whole workload is reconstructible from the log alone."""
        from repro.durability import recover

        report = recover(
            config.wal_dir,
            snapshot_every=config.wal_snapshot_every,
            tracer=self.tracer,
            registry=self.registry,
            profiler=self.profiler,
        )
        self.wal = report.wal
        self.arrivals = {
            add["name"]: add["arrival"] for add in report.adds
        }
        self._recovered_keys = {
            add["key"]: add["name"]
            for add in report.adds
            if "key" in add
        }
        self._resolved = len(report.engine.commit_order)
        if self.history.enabled:
            # Capture resumes post-recovery: replay is not re-recorded,
            # but recovered in-flight transactions may still commit, so
            # their nest paths must be known to the writer.
            for add in report.adds:
                spec = add.get("spec")
                if spec is not None:
                    self.history.declare_path(
                        spec["name"], tuple(spec.get("path", ()))
                    )
            report.engine.history = self.history
        return report.nest, report.engine

    def _bind_metrics(self) -> dict[str, Any]:
        def counter(name: str, help: str, **labels):
            family = self.registry.counter(
                name, help=help, labels=tuple(sorted(labels))
            )
            return family.labels(**labels)

        return {
            "admitted": counter(
                "repro_service_submissions_total",
                "Submissions by admission outcome.", outcome="admitted"),
            "rejected_schema": counter(
                "repro_service_submissions_total",
                "Submissions by admission outcome.", outcome="rejected_schema"),
            "rejected_load": counter(
                "repro_service_submissions_total",
                "Submissions by admission outcome.", outcome="rejected_load"),
            "duplicate": counter(
                "repro_service_submissions_total",
                "Submissions by admission outcome.", outcome="duplicate"),
            "in_flight": self.registry.gauge(
                "repro_service_in_flight",
                help="Admitted submissions not yet resolved.",
            ).labels(),
            "batches": self.registry.counter(
                "repro_service_pump_batches_total",
                help="Engine pump slices executed.",
            ).labels(),
        }

    # ------------------------------------------------------------------
    # submission path
    # ------------------------------------------------------------------

    async def submit(self, submission: Submission) -> dict:
        """Admit one submission and wait for its envelope.

        Returns the wire response dict: ``{"ok": true, "envelope": ...}``
        on success, or a rejection with ``retry_after`` when the
        in-flight window is full.
        """
        key = submission.idempotency_key
        recovered = self._recovered_keys.get(key)
        if recovered is not None and key not in self._by_key:
            # Answered from the log: the replayed engine already holds
            # this submission's history.  Committed work resolves
            # immediately; in-flight work re-attaches to the replayed
            # transaction and resumes — it is never re-executed.
            future: asyncio.Future = (
                asyncio.get_running_loop().create_future()
            )
            self._by_key[key] = future
            order = self.engine.commit_order
            if recovered in order:
                future.set_result(
                    self._envelope_for(recovered, order.index(recovered))
                )
            else:
                self._pending[recovered] = future
                self._ensure_pump()
        existing = self._by_key.get(key)
        if existing is not None:
            self._mx["duplicate"].inc()
            envelope = await asyncio.shield(existing)
            return {"ok": True, "duplicate": True,
                    "envelope": envelope.to_dict()}
        decision = self.admission.check(
            submission,
            known_names=self.engine.txns,
            in_flight=len(self._pending),
        )
        if not decision.admitted:
            self._mx[f"rejected_{decision.kind}"].inc()
            rejected = ResultEnvelope(
                name=submission.program.name,
                status="rejected",
                abort_causes=(decision.reason,),
            )
            response = {
                "ok": False,
                "error": decision.reason,
                "rejection": decision.kind,
                "envelope": rejected.to_dict(),
            }
            if decision.retry_after is not None:
                response["retry_after"] = decision.retry_after
            return response
        self._mx["admitted"].inc()
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending[submission.program.name] = future
        self._by_key[key] = future
        self._mx["in_flight"].set(len(self._pending))
        self._queue.put_nowait(submission)
        self._ensure_pump()
        envelope = await asyncio.shield(future)
        return {"ok": True, "envelope": envelope.to_dict()}

    def _ensure_pump(self) -> None:
        if self._pump_task is None or self._pump_task.done():
            self._pump_task = asyncio.get_running_loop().create_task(
                self._pump()
            )

    def _ingest(self, submission: Submission) -> None:
        """Move one admitted submission into the engine.  Declaring the
        entities and adding the program at ``tick + 1`` is exactly the
        up-front construction the library path replays."""
        spec = submission.program
        for entity in sorted(spec.entities):
            self.engine.store.declare(entity, self.config.initial_value)
        self.nest.add(spec.name, spec.path)
        if self.history.enabled:
            self.history.declare_path(spec.name, spec.path)
        state = self.engine.add_program(spec.compile())
        self.arrivals[spec.name] = state.arrival_tick
        if self.wal.enabled:
            self.wal.append(
                "add",
                name=spec.name,
                arrival=state.arrival_tick,
                key=submission.idempotency_key,
                spec=spec.to_dict(),
                entities=[
                    (entity, self.config.initial_value)
                    for entity in sorted(spec.entities)
                ],
            )

    async def _pump(self) -> None:
        """Drain the queue into the engine and tick it until idle."""
        while True:
            try:
                submission = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                if not self._pending:
                    return  # idle; the next submit restarts the pump
                submission = None
            if submission is not None:
                self._ingest(submission)
                continue  # batch everything already queued before ticking
            self.engine.advance(
                until_tick=self.engine.tick + self.config.tick_batch
            )
            self._mx["batches"].inc()
            if self.wal.enabled:
                self.wal.flush()
            self._resolve_commits()
            # Yield so connection handlers can enqueue and respond.
            await asyncio.sleep(0)

    def _resolve_commits(self) -> None:
        order = self.engine.commit_order
        while self._resolved < len(order):
            position = self._resolved
            name = order[position]
            self._resolved += 1
            future = self._pending.pop(name, None)
            if future is None or future.done():
                continue
            future.set_result(self._envelope_for(name, position))
        self._mx["in_flight"].set(len(self._pending))

    def _envelope_for(self, name: str, position: int) -> ResultEnvelope:
        state = self.engine.txns[name]
        causes: tuple[str, ...] = ()
        if state.attempt > 0:
            causes = tuple(explain_abort(self.tracer.events(), name))
        return ResultEnvelope(
            name=name,
            status="restarted" if state.attempt > 0 else "committed",
            serial_position=position,
            arrival_tick=state.arrival_tick,
            commit_tick=state.commit_tick,
            latency_ticks=(state.commit_tick or 0) - state.arrival_tick,
            attempts=state.attempt + 1,
            waits=state.waits,
            result=self.engine.result_of(name),
            abort_causes=causes,
        )

    # ------------------------------------------------------------------
    # introspection ops
    # ------------------------------------------------------------------

    def health(self) -> dict:
        report = {
            "status": "serving",
            "scheduler": self.config.scheduler,
            "tick": self.engine.tick,
            "in_flight": len(self._pending),
            "queued": self._queue.qsize(),
            "submitted": self.admission.admitted,
            "committed": len(self.engine.commit_order),
            "admission": self.admission.counters(),
        }
        if self.wal.enabled:
            report["wal"] = {
                "directory": self.wal.directory,
                "offset": self.wal.log.tell(),
                "recovered": len(self._recovered_keys),
            }
        if self.history.enabled:
            report["history"] = {
                "path": self.history.path,
                "format_version": HISTORY_FORMAT_VERSION,
            }
        return report

    def metrics_snapshot(self) -> MetricsRegistry:
        return live_registry_snapshot(self.registry, self.profiler)

    def metrics_text(self) -> str:
        return prometheus_text(self.metrics_snapshot())

    def admission_report(self, samples: int = 20, seed: int = 0) -> list[dict]:
        return self.admission.report_rows(
            self.config.initial_value, samples=samples, seed=seed
        )

    async def drain(self) -> dict:
        """Wait until every admitted submission has resolved.  With a
        WAL, the log is fsynced before replying — the drain ack promises
        the drained history survives a crash."""
        while self._pending or self._queue.qsize():
            self._ensure_pump()
            await asyncio.sleep(0)
        if self.wal.enabled:
            self.wal.sync()
        return self.health()

    def result(self) -> EngineResult:
        """The engine's result so far (committed history + metrics)."""
        return self.engine.run(until_tick=self.engine.tick)

    def envelopes(self) -> dict[str, ResultEnvelope]:
        """Envelopes for everything ever admitted (post-drain audit)."""
        return envelopes_from_engine(self.engine, self.result())


# ----------------------------------------------------------------------
# transport
# ----------------------------------------------------------------------

_HTTP_VERBS = (b"GET ", b"HEAD", b"POST")
_MAX_LINE = 4 * 1024 * 1024


class _Server:
    """Socket front end: newline-JSON with just-enough-HTTP sniffing."""

    def __init__(self, service: TransactionService) -> None:
        self.service = service
        self._server: asyncio.Server | None = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        config = self.service.config
        self._server = await asyncio.start_server(
            self._handle, config.host, config.port, limit=_MAX_LINE
        )

    async def serve_until_shutdown(self) -> None:
        assert self._server is not None
        await self._shutdown.wait()
        self._server.close()
        await self._server.wait_closed()
        # Let in-flight handlers finish their responses before the loop
        # is torn down (cancelling them mid-close is noisy).
        if self._conn_tasks:
            await asyncio.wait(self._conn_tasks, timeout=1.0)
        await self.service.drain()

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            first = await reader.readline()
            if not first:
                return
            if first[:4] in _HTTP_VERBS:
                await self._handle_http(first, reader, writer)
                return
            await self._handle_jsonl(first, reader, writer)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            # close() without awaiting the handshake: a peer that never
            # reads again would otherwise pin this task until teardown.
            writer.close()

    # -- newline-JSON ---------------------------------------------------

    async def _handle_jsonl(self, first, reader, writer) -> None:
        lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        line = first
        while line:
            stripped = line.strip()
            if stripped:
                task = asyncio.ensure_future(
                    self._answer(stripped, writer, lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            line = await reader.readline()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _answer(self, raw: bytes, writer, lock) -> None:
        try:
            request = json.loads(raw)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            response: dict = {"ok": False, "error": f"bad request: {exc}"}
            await self._write(writer, lock, response)
            return
        response = await self._dispatch(request)
        if request.get("seq") is not None:
            response["seq"] = request["seq"]
        await self._write(writer, lock, response)

    async def _write(self, writer, lock, response: dict) -> None:
        payload = json.dumps(response, sort_keys=True).encode() + b"\n"
        async with lock:
            writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        service = self.service
        try:
            if op == "submit":
                submission = Submission.from_dict(
                    request.get("submission", {})
                )
                return await service.submit(submission)
            if op == "submit_batch":
                raw = request.get("submissions", [])
                if not isinstance(raw, list):
                    return {"ok": False,
                            "error": "submissions must be a list"}
                submissions = [Submission.from_dict(s) for s in raw]
                responses = await asyncio.gather(
                    *(service.submit(s) for s in submissions)
                )
                return {"ok": True, "responses": list(responses)}
            if op == "health":
                return {"ok": True, **service.health()}
            if op == "metrics":
                if request.get("format") == "json":
                    return {
                        "ok": True,
                        "snapshot": json_snapshot(
                            service.metrics_snapshot()
                        ),
                    }
                return {"ok": True, "text": service.metrics_text()}
            if op == "admission":
                return {
                    "ok": True,
                    "rows": service.admission_report(
                        samples=int(request.get("samples", 20)),
                        seed=int(request.get("seed", 0)),
                    ),
                }
            if op == "drain":
                return {"ok": True, **(await service.drain())}
            if op == "shutdown":
                await service.drain()
                self._shutdown.set()
                return {"ok": True, **service.health(),
                        "status": "shutting down"}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}

    # -- just-enough HTTP ----------------------------------------------

    async def _handle_http(self, first: bytes, reader, writer) -> None:
        parts = first.decode("latin-1").split()
        path = parts[1] if len(parts) >= 2 else "/"
        while True:  # drain headers
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
        if path.startswith("/metrics"):
            status, ctype, body = (
                "200 OK",
                "text/plain; version=0.0.4",
                self.service.metrics_text(),
            )
        elif path.startswith("/healthz"):
            status, ctype, body = (
                "200 OK",
                "application/json",
                json.dumps(self.service.health(), sort_keys=True) + "\n",
            )
        else:
            status, ctype, body = "404 Not Found", "text/plain", "not found\n"
        blob = body.encode()
        writer.write(
            (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(blob)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode()
            + blob
        )
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def serve(
    config: ServiceConfig,
    *,
    ready: "asyncio.Future | None" = None,
) -> TransactionService:
    """Run a service until a client sends ``{"op": "shutdown"}``.

    ``ready``, when given, receives the bound port once the socket is
    listening (the CLI prints it; tests race-free-wait on it).  Returns
    the drained service so callers can audit its engine.
    """
    service = TransactionService(config)
    server = _Server(service)
    await server.start()
    if ready is not None and not ready.done():
        ready.set_result(server.port)
    await server.serve_until_shutdown()
    service.wal.sync()
    service.wal.close()
    service.history.close()
    return service
