"""Admission control for the ingest server.

Two gates, checked in order at submit time:

* **schema** — the submission must be well-formed *for this service*:
  its path must match the service's nest depth, its name must be fresh
  (the engine's transaction identifiers are forever), and its op count
  must fit the configured ceiling.  Schema rejections are permanent —
  retrying the same submission can never succeed.
* **load** — once in-flight work (queued + running) reaches the
  configured window, further submissions are rejected with a
  ``retry_after`` hint instead of being queued.  Load rejections are
  transient: the client backs off and resubmits.  Bounding the window
  also bounds the engine's per-tick cost (the candidate scan is linear
  in the in-flight set) and the closure window the MLA schedulers
  maintain.

The controller also packages the E2 admission-rate measurement
(:func:`repro.workloads.admission_by_depth`) over a sliding sample of
recently admitted programs, serving the existing ``repro admission``
analysis live from the server's ``admission`` op.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.api import ProgramSpec, Submission

__all__ = ["AdmissionConfig", "AdmissionController", "AdmissionDecision"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs of the admission gate."""

    # 32 in-flight is the measured sweet spot for the tick engine under
    # 2PL: per-tick cost is O(window), and lock convoys make wider
    # windows *slower* (256 in flight over a small keyspace livelocks).
    window: int = 32
    max_ops: int = 256
    retry_after: float = 0.05
    report_sample: int = 12

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("admission window must be at least 1")
        if self.max_ops < 1:
            raise ValueError("max_ops must be at least 1")


@dataclass(frozen=True)
class AdmissionDecision:
    """``admitted`` or a rejection with its kind and client guidance."""

    admitted: bool
    reason: str = ""
    #: "schema" rejections are permanent, "load" rejections transient.
    kind: str = ""
    #: Seconds the client should wait before retrying (load only).
    retry_after: float | None = None


class AdmissionController:
    """Stateless checks plus a sliding sample for the live E2 report."""

    def __init__(self, config: AdmissionConfig, nest_depth: int) -> None:
        self.config = config
        self.nest_depth = nest_depth
        self.admitted = 0
        self.rejected_schema = 0
        self.rejected_load = 0
        self._sample: deque[ProgramSpec] = deque(maxlen=config.report_sample)

    # ------------------------------------------------------------------

    def check(
        self,
        submission: Submission,
        known_names,
        in_flight: int,
    ) -> AdmissionDecision:
        """Gate one submission given the current service state.

        ``known_names`` is a membership-testable view of every
        transaction name the engine has ever seen; ``in_flight`` counts
        submissions accepted but not yet resolved.
        """
        spec = submission.program
        if len(spec.path) != self.nest_depth:
            return self._schema_reject(
                f"path depth {len(spec.path)} does not match the service "
                f"nest depth {self.nest_depth}"
            )
        if spec.name in known_names:
            return self._schema_reject(
                f"transaction name {spec.name!r} already used"
            )
        if len(spec.ops) > self.config.max_ops:
            return self._schema_reject(
                f"program has {len(spec.ops)} ops, limit is "
                f"{self.config.max_ops}"
            )
        if in_flight >= self.config.window:
            self.rejected_load += 1
            return AdmissionDecision(
                admitted=False,
                reason=(
                    f"in-flight window full ({in_flight} >= "
                    f"{self.config.window})"
                ),
                kind="load",
                retry_after=self.config.retry_after,
            )
        self.admitted += 1
        self._sample.append(spec)
        return AdmissionDecision(admitted=True)

    def _schema_reject(self, reason: str) -> AdmissionDecision:
        self.rejected_schema += 1
        return AdmissionDecision(admitted=False, reason=reason, kind="schema")

    # ------------------------------------------------------------------

    def report_rows(
        self, initial_value: int, samples: int = 20, seed: int = 0
    ) -> list[dict]:
        """E2 admission rates by nest depth over recently admitted
        programs — ``repro admission``, served live.

        Compiles the sliding sample into an application database (each
        spec's declared entities at the service's default initial value)
        and measures the fraction of random interleavings that are
        multilevel-atomic / correctable at each truncation depth.
        """
        from repro.model.appdb import ApplicationDatabase
        from repro.workloads.traces import admission_by_depth

        specs = list(self._sample)
        if not specs:
            return []
        programs = [spec.compile() for spec in specs]
        entities = {
            entity: initial_value
            for spec in specs
            for entity in sorted(spec.entities)
        }
        from repro.core.nests import KNest

        nest = KNest.from_paths({spec.name: spec.path for spec in specs})
        db = ApplicationDatabase(programs, entities, nest)
        return [
            {"depth": depth, "atomic": atomic, "correctable": correctable}
            for depth, atomic, correctable in admission_by_depth(
                db, samples=samples, seed=seed
            )
        ]

    def counters(self) -> dict[str, int]:
        return {
            "admitted": self.admitted,
            "rejected_schema": self.rejected_schema,
            "rejected_load": self.rejected_load,
        }
